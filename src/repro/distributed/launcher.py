"""SPMD launcher: run a rank function across a communicator world.

``spmd_run(fn, nranks)`` executes ``fn(comm, *args)`` once per rank and
returns the per-rank results in rank order -- the moral equivalent of
``mpiexec -n R python script.py`` for this library's in-process backends.

Backends
--------
``"inline"``:
    only valid for ``nranks == 1``; runs in the caller's thread.
``"thread"`` (default):
    one Python thread per rank over queue mailboxes.
``"process"``:
    one forked OS process per rank (``fn`` and its arguments must be
    picklable).  When the platform has no ``fork`` start method the
    launcher degrades to the thread backend with a structured
    :class:`~repro.errors.DegradationWarning` instead of dying.
``"socket"``:
    one forked OS process per rank over the TCP mesh of
    :mod:`repro.distributed.sockcomm`, bootstrapped through a rendezvous
    service -- the same backend that spans hosts (``rendezvous=`` plus a
    per-host ``local_ranks=`` subset).  An unreachable external
    rendezvous degrades to the process backend with a
    :class:`~repro.errors.DegradationWarning`.

A rank raising an exception cancels the run and re-raises in the caller as
:class:`~repro.errors.RankFailedError` (naming the failing rank), rather
than deadlocking peers.  The process backend additionally polls child
liveness: a rank killed without reporting (segfault, OOM, ``kill -9``)
surfaces as :class:`~repro.errors.RankDiedError` within a few poll
intervals instead of blocking until the result-queue timeout.

Every wait in this module derives from
:func:`repro.distributed.comm.recv_timeout`, so one environment variable
(``REPRO_RECV_TIMEOUT``) tightens or relaxes the whole failure-detection
ladder -- chaos tests set it to a couple of seconds.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import signal
import socket
import threading
import traceback
import warnings
from typing import Any, Callable

from repro.distributed.checked import CheckedCommunicator
from repro.distributed.comm import (
    InlineCommunicator,
    make_thread_world,
    poll_interval,
    recv_timeout,
)
from repro.distributed.mpcomm import ProcessCommunicator, make_process_pipes
from repro.errors import (
    CommunicatorError,
    DegradationWarning,
    RankDiedError,
    RankFailedError,
)
from repro.telemetry.clock import monotonic
from repro.telemetry.session import (
    TelemetrySession,
    _TelemetryRankFn,
    record_degradation,
)

__all__ = ["spmd_run"]

RankFn = Callable[..., Any]
CommWrapper = Callable[[Any], Any]

#: Worst-case wall clock for a whole rank program, as a multiple of the
#: recv timeout (compute phases between communication steps need headroom
#: beyond a single blocked-recv window).  5 x the 60s default recv timeout
#: preserves the launcher's historical 300s ceiling.
_RUN_TIMEOUT_FACTOR = 5.0

#: How long to wait for a terminated child to be reaped, as a fraction of
#: the recv timeout (0.5 x the 60s default preserves the old 30s grace).
_REAP_FACTOR = 0.5

#: A child observed dead without a result is declared failed after staying
#: dead for this many poll intervals (grace for its queued result to drain
#: through the feeder thread).
_DEAD_GRACE_POLLS = 3


def _run_threads(
    fn: RankFn,
    nranks: int,
    args: tuple,
    checked: bool | None,
    wrap_comm: CommWrapper | None = None,
) -> list[Any]:
    comms = make_thread_world(nranks, checked=checked, wrap=wrap_comm)
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException, str]] = []
    lock = threading.Lock()

    def worker(r: int) -> None:
        try:
            results[r] = fn(comms[r], *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                errors.append((r, exc, traceback.format_exc()))
        finally:
            if isinstance(comms[r], CheckedCommunicator):
                # Tell the sentinel this rank's program is over, so peers
                # still waiting on a collective fail fast with a
                # divergence diagnostic instead of a timeout.
                comms[r].finish()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    deadline = monotonic() + _RUN_TIMEOUT_FACTOR * recv_timeout()
    while True:
        alive = [t for t in threads if t.is_alive()]
        if not alive:
            break
        with lock:
            failed = bool(errors)
        if failed:
            # Fail fast: surviving rank threads are daemonic and unwind on
            # their own recv/barrier timeouts; their world is discarded.
            break
        if monotonic() > deadline:
            raise CommunicatorError(
                "SPMD run deadlocked (thread join timed out after "
                f"{_RUN_TIMEOUT_FACTOR:g} x recv_timeout)"
            )
        alive[0].join(timeout=poll_interval())
    with lock:
        if errors:
            rank, exc, tb = errors[0]
            raise RankFailedError(rank, type(exc).__name__, tb) from exc
    return results


def _process_entry(
    fn, pipes, rank, size, args, result_q, wrap_comm=None
):  # pragma: no cover - runs in the child process
    # Exceptions are shipped back as (type name, traceback) strings; the
    # type name lets the supervisor judge retryability across the hop.
    try:
        comm = ProcessCommunicator(pipes, rank, size)
        if wrap_comm is not None:
            comm = wrap_comm(comm)
        result_q.put((rank, True, fn(comm, *args)))
    except BaseException as exc:  # noqa: BLE001
        result_q.put((rank, False, (type(exc).__name__, traceback.format_exc())))


def _fork_context() -> mp.context.BaseContext | None:
    """The fork start-method context, or ``None`` when unavailable."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix
        return None


def _describe_exit(exitcode: int | None) -> str:
    if exitcode is None:
        return "still starting"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = f"signal {-exitcode}"
        return f"killed by {name}"
    return f"exited with code {exitcode}"


def _rank_roster(reported: set[int], nranks: int) -> str:
    missing = sorted(set(range(nranks)) - reported)
    return (
        f"ranks reported: {sorted(reported) or '[]'}; "
        f"ranks missing: {missing or '[]'}"
    )


def _collect_results(
    procs: dict[int, "mp.process.BaseProcess"],
    result_q,
    nranks: int,
) -> list[Any]:
    """Drain child results, watching liveness; reap; raise on failure.

    ``procs`` maps rank -> child process for the ranks this launch owns
    (all of them for the process backend; possibly a subset for a
    multi-host socket launch).  The returned list always has ``nranks``
    slots; ranks not launched here stay ``None``.
    """
    results: list[Any] = [None] * nranks
    reported: set[int] = set()
    failure: CommunicatorError | None = None
    timeout = _RUN_TIMEOUT_FACTOR * recv_timeout()
    deadline = monotonic() + timeout
    dead_since: dict[int, float] = {}
    while len(reported) < len(procs):
        poll = poll_interval()
        try:
            rank, ok, payload = result_q.get(timeout=poll)
        except queue.Empty:
            now = monotonic()
            # Liveness: a child that died without reporting will never put
            # a result; give its (possibly already queued) result a few
            # polls to drain through the feeder thread, then declare it.
            for r, p in procs.items():
                if r in reported or p.is_alive():
                    dead_since.pop(r, None)
                else:
                    dead_since.setdefault(r, now)
            confirmed = sorted(
                r
                for r, t0 in dead_since.items()
                if now - t0 >= _DEAD_GRACE_POLLS * poll
            )
            if confirmed:
                detail = ", ".join(
                    f"rank {r} {_describe_exit(procs[r].exitcode)}"
                    for r in confirmed
                )
                failure = RankDiedError(
                    f"rank process(es) died without reporting a result: "
                    f"{detail}; {_rank_roster(reported, nranks)}",
                    ranks=tuple(confirmed),
                )
                break
            if now > deadline:
                failure = CommunicatorError(
                    f"timed out after {timeout:g}s waiting for rank "
                    f"results; {_rank_roster(reported, nranks)} -- a "
                    f"missing rank is hung or deadlocked (set "
                    f"REPRO_RECV_TIMEOUT to tune every wait)"
                )
                break
            continue
        if ok:
            results[rank] = payload
            reported.add(rank)
        else:
            # 2-tuple from the process backend; the socket entry appends a
            # dict of peer-liveness enrichment (heartbeat age, address).
            original_type, tb = payload[0], payload[1]
            extra = payload[2] if len(payload) > 2 else {}
            failure = RankFailedError(rank, original_type, tb, **extra)
            break
    reap = _REAP_FACTOR * recv_timeout()
    for p in procs.values():
        if failure is not None:
            p.terminate()
        p.join(timeout=reap)
    if failure is not None:
        raise failure
    return results


def _run_processes(
    fn: RankFn,
    nranks: int,
    args: tuple,
    ctx: mp.context.BaseContext,
    wrap_comm: CommWrapper | None = None,
) -> list[Any]:
    pipes = make_process_pipes(nranks, ctx)
    result_q = ctx.Queue()
    procs = {
        r: ctx.Process(
            target=_process_entry,
            args=(fn, pipes, r, nranks, args, result_q, wrap_comm),
            daemon=True,
        )
        for r in range(nranks)
    }
    for p in procs.values():
        p.start()
    return _collect_results(procs, result_q, nranks)


def _socket_entry(
    fn, rendezvous_addr, rank, size, args, result_q, wrap_comm=None
):  # pragma: no cover - runs in the child process
    # Same shipping contract as _process_entry, plus socket-specific
    # enrichment: when the failure carries peer liveness (RankDiedError
    # from the heartbeat detector), the last-heartbeat age and peer
    # address survive the pickle hop as a kwargs dict.
    from repro.distributed.sockcomm import SocketCommunicator

    comm = None
    try:
        comm = SocketCommunicator.connect(rendezvous_addr, rank, size)
        wrapped = wrap_comm(comm) if wrap_comm is not None else comm
        result_q.put((rank, True, fn(wrapped, *args)))
    except BaseException as exc:  # noqa: BLE001
        extra = {}
        if getattr(exc, "address", None) is not None:
            extra = {
                "heartbeat_age_s": getattr(exc, "heartbeat_age_s", None),
                "address": exc.address,
            }
        result_q.put(
            (rank, False,
             (type(exc).__name__, traceback.format_exc(), extra))
        )
    finally:
        if comm is not None:
            comm.close()


def _run_socket_processes(
    fn: RankFn,
    nranks: int,
    args: tuple,
    ctx: mp.context.BaseContext,
    wrap_comm: CommWrapper | None,
    rendezvous: str | None,
    local_ranks: tuple[int, ...] | None,
) -> list[Any]:
    from repro.distributed.sockcomm import (
        RendezvousServer,
        parse_hostport,
    )

    server: RendezvousServer | None = None
    if rendezvous is None:
        # Single-host launch: bring up a private rendezvous for this run.
        server = RendezvousServer().start()
        addr = server.address
    else:
        addr = parse_hostport(rendezvous)
        try:
            probe = socket.create_connection(addr, timeout=recv_timeout())
            probe.close()
        except OSError as exc:
            if local_ranks is not None:
                # A partial world cannot fall back to a single-host
                # backend: the other hosts would wait forever.
                raise CommunicatorError(
                    f"rendezvous at {rendezvous} unreachable ({exc}) and "
                    f"local_ranks={local_ranks!r} rules out a single-host "
                    f"fallback"
                ) from exc
            reason = f"rendezvous at {rendezvous} unreachable: {exc}"
            record_degradation("socket backend", "process backend", reason)
            warnings.warn(
                DegradationWarning("socket backend", "process backend",
                                   reason),
                stacklevel=2,
            )
            return _run_processes(fn, nranks, args, ctx, wrap_comm)
    ranks = tuple(local_ranks) if local_ranks is not None else tuple(
        range(nranks)
    )
    try:
        result_q = ctx.Queue()
        procs = {
            r: ctx.Process(
                target=_socket_entry,
                args=(fn, addr, r, nranks, args, result_q, wrap_comm),
                daemon=True,
            )
            for r in ranks
        }
        for p in procs.values():
            p.start()
        return _collect_results(procs, result_q, nranks)
    finally:
        if server is not None:
            server.stop()


def spmd_run(
    fn: RankFn,
    nranks: int,
    *args: Any,
    backend: str = "thread",
    checked: bool | None = None,
    wrap_comm: CommWrapper | None = None,
    telemetry: TelemetrySession | None = None,
    rendezvous: str | None = None,
    local_ranks: tuple[int, ...] | None = None,
) -> list[Any]:
    """Execute ``fn(comm, *args)`` on every rank; return results in rank order.

    Parameters
    ----------
    fn:
        The rank program.  Receives its :class:`Communicator` first.
    nranks:
        World size (>= 1).
    args:
        Extra positional arguments passed to every rank (replicated inputs,
        like the paper's replicated factor ``B``).
    backend:
        ``"inline"``, ``"thread"``, or ``"process"``.
    checked:
        Run under the collective-order sentinel
        (:mod:`repro.distributed.checked`): divergent collective sequences
        raise a diagnostic naming both call sites instead of deadlocking.
        ``None`` defers to the ``REPRO_CHECK_COLLECTIVES`` environment
        variable (thread backend only; the single-rank inline world is
        trivially symmetric, and the fork-based process backend rejects an
        explicit ``checked=True`` rather than silently skipping the check).
    wrap_comm:
        Optional per-rank communicator wrapper applied beneath the sentinel
        -- the fault-injection hook (:mod:`repro.distributed.faults`).
        Must be picklable for the process backend.
    telemetry:
        Optional :class:`~repro.telemetry.session.TelemetrySession`.  When
        given (and enabled), every rank runs with per-rank tracing and
        metrics: its communicator -- including any sentinel/fault wrappers
        -- is wrapped in an
        :class:`~repro.telemetry.instrument.InstrumentedCommunicator`
        (telemetry observes the stack from the outside), and the session
        collects one :class:`~repro.telemetry.session.RankTrace` per rank
        alongside the results.  ``None`` (the default) adds no wrapper at
        all: rank programs see the shared no-op telemetry.
    rendezvous:
        Socket backend only: ``"host:port"`` of a running
        ``repro-kron serve-rendezvous``.  ``None`` starts a private
        in-process rendezvous for the duration of the run (single-host
        socket worlds); an unreachable external rendezvous degrades the
        launch to the process backend with a
        :class:`~repro.errors.DegradationWarning`.
    local_ranks:
        Socket backend only: the subset of ranks this invocation should
        launch (each host of a multi-host world runs its own share and
        they meet at the rendezvous).  Result slots for ranks launched
        elsewhere are ``None``.  Default: all ranks.
    """
    if nranks < 1:
        raise CommunicatorError(f"nranks must be >= 1, got {nranks}")
    if backend != "socket" and (rendezvous is not None
                                or local_ranks is not None):
        raise CommunicatorError(
            "rendezvous/local_ranks apply to the socket backend only"
        )
    traced = telemetry is not None and telemetry.enabled
    run_fn: RankFn = _TelemetryRankFn(fn, telemetry.config) if traced else fn
    results = _dispatch(run_fn, nranks, args, backend, checked, wrap_comm,
                        rendezvous, local_ranks)
    if traced:
        results = telemetry.ingest(results)
    return results


def _dispatch(
    fn: RankFn,
    nranks: int,
    args: tuple,
    backend: str,
    checked: bool | None,
    wrap_comm: CommWrapper | None,
    rendezvous: str | None = None,
    local_ranks: tuple[int, ...] | None = None,
) -> list[Any]:
    if backend == "inline":
        if nranks != 1:
            raise CommunicatorError("inline backend supports only nranks == 1")
        comm = InlineCommunicator()
        if wrap_comm is not None:
            comm = wrap_comm(comm)
        return [fn(comm, *args)]
    if backend == "thread":
        return _run_threads(fn, nranks, args, checked, wrap_comm)
    if backend == "process":
        if checked:
            raise CommunicatorError(
                "checked collective mode needs in-process shared state; "
                "it supports the thread backend only"
            )
        ctx = _fork_context()
        if ctx is None:  # pragma: no cover - non-posix
            record_degradation(
                "process backend",
                "thread backend",
                "fork start method unavailable on this platform",
            )
            warnings.warn(
                DegradationWarning(
                    "process backend",
                    "thread backend",
                    "fork start method unavailable on this platform",
                ),
                stacklevel=2,
            )
            return _run_threads(fn, nranks, args, checked=False,
                                wrap_comm=wrap_comm)
        return _run_processes(fn, nranks, args, ctx, wrap_comm)
    if backend == "socket":
        if checked:
            raise CommunicatorError(
                "checked collective mode needs in-process shared state; "
                "it supports the thread backend only"
            )
        ctx = _fork_context()
        if ctx is None:  # pragma: no cover - non-posix
            reason = "fork start method unavailable on this platform"
            record_degradation("socket backend", "thread backend", reason)
            warnings.warn(
                DegradationWarning("socket backend", "thread backend",
                                   reason),
                stacklevel=2,
            )
            return _run_threads(fn, nranks, args, checked=False,
                                wrap_comm=wrap_comm)
        return _run_socket_processes(fn, nranks, args, ctx, wrap_comm,
                                     rendezvous, local_ranks)
    raise CommunicatorError(f"unknown backend {backend!r}")

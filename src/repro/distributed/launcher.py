"""SPMD launcher: run a rank function across a communicator world.

``spmd_run(fn, nranks)`` executes ``fn(comm, *args)`` once per rank and
returns the per-rank results in rank order -- the moral equivalent of
``mpiexec -n R python script.py`` for this library's in-process backends.

Backends
--------
``"inline"``:
    only valid for ``nranks == 1``; runs in the caller's thread.
``"thread"`` (default):
    one Python thread per rank over queue mailboxes.
``"process"``:
    one forked OS process per rank (``fn`` and its arguments must be
    picklable).  Unavailable start methods degrade with a clear error.

A rank raising an exception cancels the run and re-raises in the caller
(with the failing rank identified), rather than deadlocking peers.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import traceback
from typing import Any, Callable

from repro.distributed.checked import CheckedCommunicator
from repro.distributed.comm import InlineCommunicator, make_thread_world
from repro.distributed.mpcomm import ProcessCommunicator, make_process_pipes
from repro.errors import CommunicatorError

__all__ = ["spmd_run"]

RankFn = Callable[..., Any]


def _run_threads(
    fn: RankFn, nranks: int, args: tuple, checked: bool | None
) -> list[Any]:
    comms = make_thread_world(nranks, checked=checked)
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException, str]] = []
    lock = threading.Lock()

    def worker(r: int) -> None:
        try:
            results[r] = fn(comms[r], *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                errors.append((r, exc, traceback.format_exc()))
        finally:
            if isinstance(comms[r], CheckedCommunicator):
                # Tell the sentinel this rank's program is over, so peers
                # still waiting on a collective fail fast with a
                # divergence diagnostic instead of a timeout.
                comms[r].finish()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
    if errors:
        rank, exc, tb = errors[0]
        raise CommunicatorError(f"rank {rank} failed:\n{tb}") from exc
    if any(t.is_alive() for t in threads):
        raise CommunicatorError("SPMD run deadlocked (thread join timed out)")
    return results


def _process_entry(fn, pipes, rank, size, args, result_q):  # pragma: no cover
    # Runs in the child process; exceptions are shipped back as strings.
    try:
        comm = ProcessCommunicator(pipes, rank, size)
        result_q.put((rank, True, fn(comm, *args)))
    except BaseException:  # noqa: BLE001
        result_q.put((rank, False, traceback.format_exc()))


def _run_processes(fn: RankFn, nranks: int, args: tuple) -> list[Any]:
    try:
        ctx = mp.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-posix
        raise CommunicatorError("process backend requires fork support") from exc
    pipes = make_process_pipes(nranks, ctx)
    result_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_process_entry,
            args=(fn, pipes, r, nranks, args, result_q),
            daemon=True,
        )
        for r in range(nranks)
    ]
    for p in procs:
        p.start()
    results: list[Any] = [None] * nranks
    failure: str | None = None
    for _ in range(nranks):
        rank, ok, payload = result_q.get(timeout=300.0)
        if ok:
            results[rank] = payload
        else:
            failure = f"rank {rank} failed:\n{payload}"
            break
    for p in procs:
        if failure:
            p.terminate()
        p.join(timeout=30.0)
    if failure:
        raise CommunicatorError(failure)
    return results


def spmd_run(
    fn: RankFn,
    nranks: int,
    *args: Any,
    backend: str = "thread",
    checked: bool | None = None,
) -> list[Any]:
    """Execute ``fn(comm, *args)`` on every rank; return results in rank order.

    Parameters
    ----------
    fn:
        The rank program.  Receives its :class:`Communicator` first.
    nranks:
        World size (>= 1).
    args:
        Extra positional arguments passed to every rank (replicated inputs,
        like the paper's replicated factor ``B``).
    backend:
        ``"inline"``, ``"thread"``, or ``"process"``.
    checked:
        Run under the collective-order sentinel
        (:mod:`repro.distributed.checked`): divergent collective sequences
        raise a diagnostic naming both call sites instead of deadlocking.
        ``None`` defers to the ``REPRO_CHECK_COLLECTIVES`` environment
        variable (thread backend only; the single-rank inline world is
        trivially symmetric, and the fork-based process backend rejects an
        explicit ``checked=True`` rather than silently skipping the check).
    """
    if nranks < 1:
        raise CommunicatorError(f"nranks must be >= 1, got {nranks}")
    if backend == "inline":
        if nranks != 1:
            raise CommunicatorError("inline backend supports only nranks == 1")
        return [fn(InlineCommunicator(), *args)]
    if backend == "thread":
        return _run_threads(fn, nranks, args, checked)
    if backend == "process":
        if checked:
            raise CommunicatorError(
                "checked collective mode needs in-process shared state; "
                "it supports the thread backend only"
            )
        return _run_processes(fn, nranks, args)
    raise CommunicatorError(f"unknown backend {backend!r}")

"""``multiprocessing`` communicator backend.

True multi-process SPMD execution for the generator: ranks are OS processes
exchanging pickled messages over ``multiprocessing`` queues, the closest
stdlib analogue to MPI point-to-point semantics.  Useful to demonstrate the
generator is free of shared-state assumptions; the thread backend remains
the default for tests (lower startup cost, no pickling).

Design: a full ``size x size`` grid of SimpleQueues is created up front --
``pipes[src][dst]`` carries messages from ``src`` to ``dst`` -- so there is
no central router process.  Tags are carried in-band and demultiplexed on
the receiving side, since a process pair shares one queue.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any

from repro.distributed.comm import Communicator
from repro.errors import CommunicatorError

__all__ = ["ProcessCommunicator", "make_process_pipes"]

_RECV_TIMEOUT = 120.0


def make_process_pipes(size: int, ctx: mp.context.BaseContext | None = None):
    """Build the ``size x size`` queue grid shared by all ranks."""
    ctx = ctx or mp.get_context("fork")
    return [[ctx.Queue() for _dst in range(size)] for _src in range(size)]


class ProcessCommunicator(Communicator):
    """One rank of a process-backed world.

    Parameters
    ----------
    pipes:
        Queue grid from :func:`make_process_pipes` (inherited through fork
        or passed to the child at spawn).
    rank, size:
        This process's identity.
    """

    def __init__(self, pipes, rank: int, size: int) -> None:
        self._pipes = pipes
        self._rank = rank
        self._size = size
        # messages that arrived while waiting for a different tag
        self._stash: dict[tuple[int, int], list[Any]] = {}

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_dest(dest)
        if dest == self._rank:
            raise CommunicatorError("send to self is not supported")
        self._pipes[self._rank][dest].put((tag, obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_dest(source)
        if source == self._rank:
            raise CommunicatorError("recv from self is not supported")
        key = (source, tag)
        stash = self._stash.get(key)
        if stash:
            return stash.pop(0)
        q = self._pipes[source][self._rank]
        while True:
            try:
                got_tag, obj = q.get(timeout=_RECV_TIMEOUT)
            except Exception as exc:  # queue.Empty re-exported differently
                raise CommunicatorError(
                    f"rank {self._rank} timed out receiving from {source}"
                ) from exc
            if got_tag == tag:
                return obj
            self._stash.setdefault((source, got_tag), []).append(obj)

    def barrier(self) -> None:
        """Dissemination barrier over point-to-point messages.

        log2(size) rounds: in round ``k`` each rank signals
        ``(rank + 2**k) % size`` and waits for ``(rank - 2**k) % size``.
        """
        k = 1
        while k < self._size:
            self.send(None, (self._rank + k) % self._size, tag=-100 - k)
            self.recv((self._rank - k) % self._size, tag=-100 - k)
            k *= 2

"""``multiprocessing`` communicator backend.

True multi-process SPMD execution for the generator: ranks are OS processes
exchanging messages over ``multiprocessing`` queues, the closest stdlib
analogue to MPI point-to-point semantics.  Useful to demonstrate the
generator is free of shared-state assumptions; the thread backend remains
the default for tests (lower startup cost, no pickling).

Design: a full ``size x size`` grid of queues is created up front --
``pipes[src][dst]`` carries messages from ``src`` to ``dst`` -- so there is
no central router process.  Tags are carried in-band and demultiplexed on
the receiving side, since a process pair shares one queue.

Zero-copy edge exchange
-----------------------
Pickling multi-megabyte edge blocks through a queue costs two full copies
(serialize + deserialize) plus pipe traffic.  When ``zero_copy`` is enabled
(the default), large contiguous numeric arrays are instead written once into
a ``multiprocessing.shared_memory`` segment and only a small descriptor
(name, shape, dtype) travels through the queue; the receiver maps the
segment and wraps it **without copying**.  Received arrays are flagged
read-only and stay valid for the lifetime of the receiving communicator
(the segment is kept mapped until the rank finishes); callers that need to
mutate or outlive the rank must copy -- the edge shuffle's ``vstack``
already does.

Segment lifecycle: the sender creates the segment, hands tracker
responsibility over with ``resource_tracker.unregister`` (the receiving
process re-registers on attach), and the receiver unlinks immediately after
mapping, so the name disappears as soon as the message is consumed while the
memory survives until the mapping is dropped.  A message that is never
received (a crashed peer) can therefore leak its segment until reboot; the
launcher's fail-fast error propagation makes that a pathological case only.

When segment creation fails (no ``/dev/shm``, quota exhausted), the sender
emits a structured :class:`~repro.errors.DegradationWarning` and falls back
to the pickled queue path for the rest of the rank's life -- slower, never
fatal.
"""

from __future__ import annotations

import multiprocessing as mp
import warnings
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.distributed.comm import Communicator, recv_timeout
from repro.errors import CommunicatorError, DegradationWarning
from repro.telemetry.session import record_degradation

__all__ = ["ProcessCommunicator", "make_process_pipes", "SHM_MIN_BYTES"]

#: Default blocked-recv timeout for the process backend (higher than the
#: thread backend: fork + pickling adds real latency).  Overridable via
#: the ``REPRO_RECV_TIMEOUT`` environment variable, like the thread world.
_RECV_TIMEOUT = 120.0

#: Arrays at least this large (bytes) ride shared memory instead of pickle.
SHM_MIN_BYTES = 1 << 16

_SHM_TAG = "__shm_ndarray__"


def make_process_pipes(size: int, ctx: mp.context.BaseContext | None = None):
    """Build the ``size x size`` queue grid shared by all ranks."""
    ctx = ctx or mp.get_context("fork")
    return [[ctx.Queue() for _dst in range(size)] for _src in range(size)]


def _shm_wrap(arr: np.ndarray) -> tuple:
    """Copy ``arr`` into a fresh shared segment; return its descriptor."""
    seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    # Hand cleanup responsibility to the receiver: it re-registers on
    # attach and unregisters via unlink, keeping every tracker balanced.
    resource_tracker.unregister(seg._name, "shared_memory")  # noqa: SLF001
    seg.close()
    return (_SHM_TAG, seg.name, arr.shape, arr.dtype.str)


class ProcessCommunicator(Communicator):
    """One rank of a process-backed world.

    Parameters
    ----------
    pipes:
        Queue grid from :func:`make_process_pipes` (inherited through fork
        or passed to the child at spawn).
    rank, size:
        This process's identity.
    zero_copy:
        Ship large contiguous numeric arrays through shared memory instead
        of pickling them (see module docstring).  Received arrays are then
        read-only views backed by segments this communicator keeps mapped.
    shm_min_bytes:
        Minimum array size for the shared-memory path; smaller payloads
        pickle (segment setup would dominate).
    """

    def __init__(
        self,
        pipes,
        rank: int,
        size: int,
        *,
        zero_copy: bool = True,
        shm_min_bytes: int | None = None,
    ) -> None:
        self._pipes = pipes
        self._rank = rank
        self._size = size
        self._zero_copy = bool(zero_copy)
        # None defers to the module constant at call time so tests (and
        # forked children) can lower the threshold via monkeypatching.
        self._shm_min_bytes = shm_min_bytes
        # messages that arrived while waiting for a different tag
        self._stash: dict[tuple[int, int], list[Any]] = {}
        # received segments kept mapped so returned views stay valid
        self._segments: list[shared_memory.SharedMemory] = []

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    # ---- zero-copy payload handling ------------------------------------
    def _shm_eligible(self, obj: Any) -> bool:
        threshold = (
            SHM_MIN_BYTES if self._shm_min_bytes is None else self._shm_min_bytes
        )
        return (
            self._zero_copy
            and isinstance(obj, np.ndarray)
            and obj.dtype.kind in "biuf"
            and obj.flags.c_contiguous
            and obj.nbytes >= threshold
        )

    def _shm_unwrap(self, obj: Any) -> Any:
        """Rehydrate a shared-memory descriptor into a read-only view."""
        if not (isinstance(obj, tuple) and len(obj) == 4 and obj[0] == _SHM_TAG):
            return obj
        _, name, shape, dtype = obj
        seg = shared_memory.SharedMemory(name=name)
        seg.unlink()  # name gone now; memory lives while mapped
        self._segments.append(seg)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        arr.flags.writeable = False
        return arr

    def free_received_buffers(self) -> None:
        """Drop the mappings behind previously received zero-copy arrays.

        After this, arrays returned by earlier ``recv``/``alltoall`` calls
        on the zero-copy path are invalid.  Called automatically when the
        process exits; exposed for long-lived ranks that exchange many
        rounds and copy what they keep.
        """
        for seg in self._segments:
            seg.close()
        self._segments.clear()

    # ---- point-to-point ------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_dest(dest)
        if dest == self._rank:
            raise CommunicatorError("send to self is not supported")
        if self._shm_eligible(obj):
            try:
                obj = _shm_wrap(obj)
            except (OSError, ValueError) as exc:
                # /dev/shm may be missing, full, or too small (containers).
                # The pickled queue path is slower but always works, so
                # degrade for the rest of this rank's life instead of dying.
                self._zero_copy = False
                record_degradation(
                    f"zero-copy exchange (rank {self._rank})",
                    "pickled queue messages",
                    f"shared-memory segment creation failed: {exc}",
                )
                warnings.warn(
                    DegradationWarning(
                        f"zero-copy exchange (rank {self._rank})",
                        "pickled queue messages",
                        f"shared-memory segment creation failed: {exc}",
                    ),
                    stacklevel=2,
                )
        self._pipes[self._rank][dest].put((tag, obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_dest(source)
        if source == self._rank:
            raise CommunicatorError("recv from self is not supported")
        key = (source, tag)
        stash = self._stash.get(key)
        if stash:
            return stash.pop(0)
        q = self._pipes[source][self._rank]
        timeout = recv_timeout(_RECV_TIMEOUT)
        while True:
            try:
                got_tag, obj = q.get(timeout=timeout)
            except Exception as exc:  # queue.Empty re-exported differently
                raise CommunicatorError(
                    f"rank {self._rank} timed out after {timeout:g}s waiting "
                    f"to receive from rank {source} (tag {tag}); the sender "
                    f"never sent or died"
                ) from exc
            obj = self._shm_unwrap(obj)
            if got_tag == tag:
                return obj
            self._stash.setdefault((source, got_tag), []).append(obj)

    def probe(self, source: int, tag: int = 0) -> bool:
        """True if a message from ``source`` with ``tag`` is deliverable.

        Drains whatever is already sitting on the incoming queue into the
        tag stash (unwrapping zero-copy descriptors as ``recv`` would) so
        the answer accounts for messages queued under other tags; never
        blocks.  Optional backend surface -- see
        :meth:`ThreadCommunicator.probe`.
        """
        self._check_dest(source)
        if source == self._rank:
            raise CommunicatorError("probe from self is not supported")
        if self._stash.get((source, tag)):
            return True
        q = self._pipes[source][self._rank]
        while True:
            try:
                got_tag, obj = q.get_nowait()
            except Exception:  # queue.Empty re-exported differently
                return False
            obj = self._shm_unwrap(obj)
            self._stash.setdefault((source, got_tag), []).append(obj)
            if got_tag == tag:
                return True

    def barrier(self) -> None:
        """Dissemination barrier over point-to-point messages.

        log2(size) rounds: in round ``k`` each rank signals
        ``(rank + 2**k) % size`` and waits for ``(rank - 2**k) % size``.
        """
        k = 1
        while k < self._size:
            self.send(None, (self._rank + k) % self._size, tag=-100 - k)
            self.recv((self._rank - k) % self._size, tag=-100 - k)
            k *= 2

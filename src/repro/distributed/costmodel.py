"""Analytic cost model for distributed generation (Remark 1).

The paper's scalability discussion is asymptotic: per-rank storage
``O(|E_A|/R + |E_B|)`` and time ``O(|E_A||E_B|/R)`` for the 1-D scheme,
with parallelism capped at ``|E_A|`` ranks; the 2-D scheme lifts the cap to
``|E_A||E_B| = |E_C|`` and restores weak scaling.  This module makes those
costs concrete so the Remark-1 experiment (E5) can sweep rank counts far
beyond what a laptop can actually run -- up to the paper's 1.57M-core
SEQUOIA configuration -- while the measured thread-backend runs anchor the
model at small ``R``.

All quantities are in directed edge rows; rates are calibrated from a
measured run via :meth:`CostModel.calibrated`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.distributed.partition import grid_shape_2d
from repro.errors import PartitionError

__all__ = ["CostModel", "ScalingPoint", "strong_scaling_curve", "weak_scaling_curve", "sequoia_projection"]


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a scaling sweep."""

    ranks: int
    effective_ranks: int
    edges_total: int
    edges_per_rank_max: float
    storage_rows_per_rank: float
    time_seconds: float
    efficiency: float


@dataclass(frozen=True)
class CostModel:
    """Throughput/footprint parameters of one deployment.

    Attributes
    ----------
    edges_per_second:
        Product edges one rank generates per second (vectorized kernel
        rate; calibrate with :meth:`calibrated`).
    bytes_per_edge:
        Storage cost of one directed edge row (two int64 = 16 B default).
    shuffle_bandwidth_edges:
        Edges per second one rank can send through the shuffle; ``inf``
        disables the communication term (generation-only model).
    """

    edges_per_second: float = 5e7
    bytes_per_edge: float = 16.0
    shuffle_bandwidth_edges: float = math.inf

    @classmethod
    def calibrated(
        cls, measured_edges: int, measured_seconds: float, **kwargs
    ) -> "CostModel":
        """Build a model whose rate matches a measured single-rank run."""
        if measured_seconds <= 0 or measured_edges <= 0:
            raise ValueError("calibration needs positive edges and seconds")
        return cls(edges_per_second=measured_edges / measured_seconds, **kwargs)

    def with_shuffle(self, bandwidth_edges: float) -> "CostModel":
        """Copy of this model with a finite shuffle bandwidth."""
        return replace(self, shuffle_bandwidth_edges=bandwidth_edges)

    # ------------------------------------------------------------------ #
    # per-scheme predictions
    # ------------------------------------------------------------------ #
    def effective_ranks(self, m_a: int, m_b: int, ranks: int, scheme: str) -> int:
        """How many ranks can do useful work (Remark 1's parallelism cap)."""
        if scheme == "1d":
            return min(ranks, m_a)
        if scheme == "2d":
            return min(ranks, m_a * m_b)
        raise PartitionError(f"unknown scheme {scheme!r}")

    def edges_per_rank_max(self, m_a: int, m_b: int, ranks: int, scheme: str) -> float:
        """Largest per-rank generation volume (the critical path)."""
        if scheme == "1d":
            shards = min(ranks, m_a)
            return math.ceil(m_a / shards) * m_b
        if scheme == "2d":
            r_half, r_b = grid_shape_2d(ranks)
            r_half = min(r_half, m_a)
            r_b = min(r_b, m_b)
            return math.ceil(m_a / r_half) * math.ceil(m_b / r_b)
        raise PartitionError(f"unknown scheme {scheme!r}")

    def storage_rows_per_rank(
        self, m_a: int, m_b: int, ranks: int, scheme: str
    ) -> float:
        """Factor rows held per rank (the O(|E_A|/R + |E_B|) term)."""
        if scheme == "1d":
            return m_a / min(ranks, m_a) + m_b
        if scheme == "2d":
            r_half, r_b = grid_shape_2d(ranks)
            return m_a / min(r_half, m_a) + m_b / min(r_b, m_b)
        raise PartitionError(f"unknown scheme {scheme!r}")

    def generation_time(
        self, m_a: int, m_b: int, ranks: int, scheme: str = "1d"
    ) -> float:
        """Predicted wall-clock seconds for ``C = A (x) B`` on ``ranks`` ranks.

        Critical-path volume over the generation rate, plus the shuffle
        term when bandwidth is finite (every generated edge crosses the
        network once under a hash/block storage map).
        """
        volume = self.edges_per_rank_max(m_a, m_b, ranks, scheme)
        t = volume / self.edges_per_second
        if math.isfinite(self.shuffle_bandwidth_edges):
            t += volume / self.shuffle_bandwidth_edges
        return t

    def scaling_point(
        self, m_a: int, m_b: int, ranks: int, scheme: str
    ) -> ScalingPoint:
        """Assemble one sweep row, including parallel efficiency vs 1 rank."""
        total = m_a * m_b
        t = self.generation_time(m_a, m_b, ranks, scheme)
        t1 = self.generation_time(m_a, m_b, 1, scheme)
        eff = t1 / (ranks * t) if t > 0 else 0.0
        return ScalingPoint(
            ranks=ranks,
            effective_ranks=self.effective_ranks(m_a, m_b, ranks, scheme),
            edges_total=total,
            edges_per_rank_max=self.edges_per_rank_max(m_a, m_b, ranks, scheme),
            storage_rows_per_rank=self.storage_rows_per_rank(m_a, m_b, ranks, scheme),
            time_seconds=t,
            efficiency=min(1.0, eff),
        )


def strong_scaling_curve(
    model: CostModel, m_a: int, m_b: int, ranks: list[int], scheme: str = "1d"
) -> list[ScalingPoint]:
    """Fixed problem, growing ranks: where each scheme's speedup saturates."""
    return [model.scaling_point(m_a, m_b, r, scheme) for r in ranks]


def weak_scaling_curve(
    model: CostModel,
    edges_per_rank: int,
    ranks: list[int],
    scheme: str = "2d",
    *,
    balanced: bool = True,
    fixed_m_b: int | None = None,
) -> list[ScalingPoint]:
    """Grow the problem with the machine: ``|E_C| = ranks * edges_per_rank``.

    ``balanced=True`` scales both factors as ``sqrt(|E_C|)`` -- exactly the
    regime where Remark 1 shows the 1-D scheme stops weak-scaling (its
    parallelism cap ``|E_A| = O(|E_C|^{1/2})`` falls below ``ranks``) while
    the 2-D scheme keeps per-rank time flat.  ``balanced=False`` with
    ``fixed_m_b`` reproduces the paper's "simple solution": hold B fixed and
    let ``|E_A|`` grow linearly with ``|E_C|``.
    """
    out = []
    for r in ranks:
        total = r * edges_per_rank
        if balanced:
            m_a = m_b = max(1, math.isqrt(total))
        else:
            if fixed_m_b is None:
                raise ValueError("fixed_m_b required when balanced=False")
            m_b = fixed_m_b
            m_a = max(1, total // m_b)
        out.append(model.scaling_point(m_a, m_b, r, scheme))
    return out


def sequoia_projection(model: CostModel | None = None) -> dict:
    """Project the paper's headline run: trillion-edge product on SEQUOIA.

    Factors are "two Graph500 scale 18 graphs" -- ``2**18`` vertices and
    ``16 * 2**18`` undirected edges each, i.e. ~``2**23`` directed rows --
    on ``R = 1.57e6`` cores, generated "in under a minute".  Returns the
    model's per-scheme predictions plus the implied per-core rate the
    printed result requires, so the claim can be sanity-checked against any
    calibration.
    """
    m_factor = 2 * 16 * 2**18  # directed rows of one scale-18 factor
    ranks = 1_570_000
    model = model or CostModel()
    total = m_factor * m_factor
    implied_rate = (total / ranks) / 60.0  # edges/sec/core to finish in 60 s
    return {
        "factor_directed_edges": m_factor,
        "product_directed_edges": total,
        "ranks": ranks,
        "point_1d": model.scaling_point(m_factor, m_factor, ranks, "1d"),
        "point_2d": model.scaling_point(m_factor, m_factor, ranks, "2d"),
        "implied_edges_per_second_per_rank": implied_rate,
    }

"""Content-addressed shard checkpoints for supervised generation.

Nonstochastic Kronecker generation is deterministic per shard (Section
III): rank ``r``'s stored edges are a pure function of the factors, the
partition, and the routing configuration.  That makes failed work ideal
for checkpoint/retry -- a shard computed once never needs recomputing, and
a recomputed shard can be *verified* bit-for-bit against the recorded
digest (cf. Sanders et al., arXiv:1803.09021 on validating generated
output at scale).

Each checkpoint is one ``.npz`` file holding the shard's edge array, its
``generated`` count, and a 64-bit content digest computed with the
project's splitmix64 hashing (:mod:`repro.util.hashing`).  The digest is
order-sensitive (row permutations change it) and shape-sensitive, so a
digest match means the recovered array is byte-for-byte the original.
Reads re-derive the digest from the data and compare against the recorded
one; a mismatch (disk corruption, partial write) is treated as *absent* by
default -- the shard regenerates -- with a structured
:class:`~repro.errors.DegradationWarning`, or raises
:class:`~repro.errors.CheckpointError` under ``strict=True``.
"""

from __future__ import annotations

import os
import re
import tempfile
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError, DegradationWarning
from repro.telemetry.session import record_degradation
from repro.util.hashing import hash_pair, splitmix64

__all__ = ["edges_digest", "CheckpointStore", "Shard"]

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]+")


def edges_digest(edges: np.ndarray) -> int:
    """Order- and shape-sensitive 64-bit digest of an edge array.

    Rows are hashed pairwise (splitmix64 via :func:`hash_pair`), mixed with
    their positions so permutations change the digest, folded with uint64
    wraparound addition (associative, vectorized), and finalized together
    with the row count.
    """
    edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
    m = len(edges)
    with np.errstate(over="ignore"):
        rows = hash_pair(
            edges[:, 0].astype(np.uint64),
            edges[:, 1].astype(np.uint64),
            seed=m,
            directed=True,
        )
        positioned = splitmix64(rows ^ splitmix64(np.arange(m, dtype=np.uint64)))
        acc = np.uint64(0) if m == 0 else positioned.sum(dtype=np.uint64)
        final = splitmix64(acc + np.uint64(m))
    return int(final)


@dataclass(frozen=True)
class Shard:
    """One recovered checkpoint entry."""

    edges: np.ndarray
    generated: int
    digest: int


class CheckpointStore:
    """Directory of digest-verified shard checkpoints.

    Keys are arbitrary strings (sanitized into filenames); the supervised
    launcher keys shards by a run signature that folds in the factor
    digests and every generation parameter, so a resumed run can never
    consume shards from a differently-configured one.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{_KEY_RE.sub('_', key)}.npz"

    def has(self, key: str) -> bool:
        """Does a checkpoint file exist for ``key`` (without verifying)?"""
        return self._path(key).exists()

    def put(self, key: str, edges: np.ndarray, generated: int = 0) -> int:
        """Persist a shard; returns its content digest.

        The write goes through a temp file + atomic rename so a crash
        mid-write leaves either the old checkpoint or none -- never a
        torn file that parses.
        """
        edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
        digest = edges_digest(edges)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    edges=edges,
                    generated=np.int64(generated),
                    digest=np.uint64(digest),
                )
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return digest

    def get(self, key: str, *, strict: bool = False) -> Shard | None:
        """Load and verify a shard; ``None`` when absent or unusable.

        The digest is recomputed from the loaded data and compared to the
        recorded one.  On mismatch (or an unreadable file) the checkpoint
        is discarded: a :class:`DegradationWarning` is emitted and the
        shard regenerates -- unless ``strict=True``, which raises
        :class:`CheckpointError` instead.
        """
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as npz:
                edges = np.asarray(npz["edges"], dtype=np.int64).reshape(-1, 2)
                generated = int(npz["generated"])
                recorded = int(npz["digest"])
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            return self._reject(key, path, f"unreadable checkpoint: {exc}", strict)
        actual = edges_digest(edges)
        if actual != recorded:
            return self._reject(
                key,
                path,
                f"content digest {actual:#018x} does not match recorded "
                f"{recorded:#018x} (corrupt or torn write)",
                strict,
            )
        return Shard(edges=edges, generated=generated, digest=recorded)

    def _reject(
        self, key: str, path: Path, reason: str, strict: bool
    ) -> None:
        if strict:
            raise CheckpointError(f"checkpoint {key!r} at {path}: {reason}")
        record_degradation(
            f"checkpoint {key!r}", "regenerating the shard", reason
        )
        warnings.warn(
            DegradationWarning(
                f"checkpoint {key!r}", "regenerating the shard", reason
            ),
            stacklevel=3,
        )
        return None

    def discard(self, key: str) -> None:
        """Remove one checkpoint (missing is fine)."""
        path = self._path(key)
        if path.exists():
            path.unlink()

    def keys(self) -> list[str]:
        """Stored keys (filename-sanitized form), sorted."""
        return sorted(p.stem for p in self.directory.glob("*.npz"))

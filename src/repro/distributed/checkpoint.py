"""Content-addressed shard checkpoints for supervised generation.

Nonstochastic Kronecker generation is deterministic per shard (Section
III): rank ``r``'s stored edges are a pure function of the factors, the
partition, and the routing configuration.  That makes failed work ideal
for checkpoint/retry -- a shard computed once never needs recomputing, and
a recomputed shard can be *verified* bit-for-bit against the recorded
digest (cf. Sanders et al., arXiv:1803.09021 on validating generated
output at scale).

Each checkpoint is one ``.npz`` file holding the shard's edge array, its
``generated`` count, and a 64-bit content digest computed with the
project's splitmix64 hashing (:mod:`repro.util.hashing`).  The digest is
order-sensitive (row permutations change it) and shape-sensitive, so a
digest match means the recovered array is byte-for-byte the original.
Reads re-derive the digest from the data and compare against the recorded
one; a mismatch (disk corruption, partial write) is treated as *absent* by
default -- the shard regenerates -- with a structured
:class:`~repro.errors.DegradationWarning`, or raises
:class:`~repro.errors.CheckpointError` under ``strict=True``.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    DegradationWarning,
)
from repro.telemetry.session import record_degradation
from repro.util.hashing import hash_pair, splitmix64

__all__ = [
    "edges_digest",
    "CheckpointStore",
    "Shard",
    "RunManifest",
    "reshard_run",
]

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]+")


def edges_digest(edges: np.ndarray) -> int:
    """Order- and shape-sensitive 64-bit digest of an edge array.

    Rows are hashed pairwise (splitmix64 via :func:`hash_pair`), mixed with
    their positions so permutations change the digest, folded with uint64
    wraparound addition (associative, vectorized), and finalized together
    with the row count.
    """
    edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
    m = len(edges)
    with np.errstate(over="ignore"):
        rows = hash_pair(
            edges[:, 0].astype(np.uint64),
            edges[:, 1].astype(np.uint64),
            seed=m,
            directed=True,
        )
        positioned = splitmix64(rows ^ splitmix64(np.arange(m, dtype=np.uint64)))
        acc = np.uint64(0) if m == 0 else positioned.sum(dtype=np.uint64)
        final = splitmix64(acc + np.uint64(m))
    return int(final)


@dataclass(frozen=True)
class Shard:
    """One recovered checkpoint entry.

    ``resharded`` marks shards written by :func:`reshard_run` rather than
    by generation: their contents are ownership-exact but their row order
    is the canonical union order, so a digest mismatch against a
    re-*generated* shard means "stale layout", not "nondeterminism".
    """

    edges: np.ndarray
    generated: int
    digest: int
    resharded: bool = False


@dataclass(frozen=True)
class RunManifest:
    """Consensus summary of one completed checkpointed run.

    Written after a run succeeds; consumed by elastic resume.  ``family``
    is the rank-count-independent configuration signature (factor digests
    plus every parameter except the world size), so manifests of the same
    family describe the *same* edge set partitioned at different rank
    counts.  ``union_digest`` is the digest of all shards stacked in rank
    order and canonically (lexicographically) sorted -- the invariant any
    re-partition must preserve bit-for-bit.
    """

    run_key: str
    family: str
    nranks: int
    shard_digests: tuple[int, ...]
    union_digest: int
    edges_total: int


class CheckpointStore:
    """Directory of digest-verified shard checkpoints.

    Keys are arbitrary strings (sanitized into filenames); the supervised
    launcher keys shards by a run signature that folds in the factor
    digests and every generation parameter, so a resumed run can never
    consume shards from a differently-configured one.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{_KEY_RE.sub('_', key)}.npz"

    def has(self, key: str) -> bool:
        """Does a checkpoint file exist for ``key`` (without verifying)?"""
        return self._path(key).exists()

    def put(
        self,
        key: str,
        edges: np.ndarray,
        generated: int = 0,
        *,
        resharded: bool = False,
    ) -> int:
        """Persist a shard; returns its content digest.

        The write goes through a temp file + atomic rename so a crash
        mid-write leaves either the old checkpoint or none -- never a
        torn file that parses.
        """
        edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
        digest = edges_digest(edges)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    edges=edges,
                    generated=np.int64(generated),
                    digest=np.uint64(digest),
                    resharded=np.int64(resharded),
                )
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return digest

    def get(
        self, key: str, *, strict: bool = False, discard: bool = False
    ) -> Shard | None:
        """Load and verify a shard; ``None`` when absent or unusable.

        The digest is recomputed from the loaded data and compared to the
        recorded one.  On mismatch (or an unreadable file) the checkpoint
        is discarded: a :class:`DegradationWarning` is emitted and the
        shard regenerates -- unless ``strict=True``, which raises
        :class:`CheckpointError` instead, or ``discard=True``, which
        *deletes* the damaged file and raises the transient
        :class:`CheckpointCorruptionError` (the supervised path: the retry
        finds no checkpoint and regenerates bit-identically).
        """
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as npz:
                edges = np.asarray(npz["edges"], dtype=np.int64).reshape(-1, 2)
                generated = int(npz["generated"])
                recorded = int(npz["digest"])
                resharded = (
                    bool(npz["resharded"]) if "resharded" in npz else False
                )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            return self._reject(
                key, path, f"unreadable checkpoint: {exc}", strict, discard
            )
        actual = edges_digest(edges)
        if actual != recorded:
            return self._reject(
                key,
                path,
                f"content digest {actual:#018x} does not match recorded "
                f"{recorded:#018x} (corrupt or torn write)",
                strict,
                discard,
            )
        return Shard(
            edges=edges, generated=generated, digest=recorded,
            resharded=resharded,
        )

    def _reject(
        self,
        key: str,
        path: Path,
        reason: str,
        strict: bool,
        discard: bool = False,
    ) -> None:
        if discard:
            path.unlink(missing_ok=True)
            raise CheckpointCorruptionError(
                f"checkpoint {key!r} at {path}: {reason} -- damaged "
                f"artifact discarded; a retry regenerates the shard"
            )
        if strict:
            raise CheckpointError(f"checkpoint {key!r} at {path}: {reason}")
        record_degradation(
            f"checkpoint {key!r}", "regenerating the shard", reason
        )
        warnings.warn(
            DegradationWarning(
                f"checkpoint {key!r}", "regenerating the shard", reason
            ),
            stacklevel=3,
        )
        return None

    def discard(self, key: str) -> None:
        """Remove one checkpoint (missing is fine)."""
        path = self._path(key)
        if path.exists():
            path.unlink()

    def keys(self) -> list[str]:
        """Stored keys (filename-sanitized form), sorted."""
        return sorted(p.stem for p in self.directory.glob("*.npz"))

    # ---- run manifests ---------------------------------------------------
    def _manifest_path(self, run_key: str) -> Path:
        return self.directory / f"{_KEY_RE.sub('_', run_key)}.manifest.json"

    def put_manifest(self, manifest: RunManifest) -> None:
        """Persist a run manifest (atomic tmp + rename, like shards)."""
        path = self._manifest_path(manifest.run_key)
        payload = json.dumps(
            {
                "run_key": manifest.run_key,
                "family": manifest.family,
                "nranks": manifest.nranks,
                "shard_digests": [f"{d:016x}" for d in manifest.shard_digests],
                "union_digest": f"{manifest.union_digest:016x}",
                "edges_total": manifest.edges_total,
            },
            indent=2,
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get_manifest(self, run_key: str) -> RunManifest | None:
        """Load one manifest; damaged files are deleted and yield ``None``.

        A manifest is pure derived metadata (the shards are the truth), so
        an unreadable one is silently dropped -- elastic resume simply will
        not see that run.  Digest *verification* against the shards happens
        in :func:`reshard_run`, where a mismatch is a transient error.
        """
        path = self._manifest_path(run_key)
        if not path.exists():
            return None
        try:
            with open(path) as fh:
                doc = json.load(fh)
            return RunManifest(
                run_key=str(doc["run_key"]),
                family=str(doc["family"]),
                nranks=int(doc["nranks"]),
                shard_digests=tuple(
                    int(d, 16) for d in doc["shard_digests"]
                ),
                union_digest=int(doc["union_digest"], 16),
                edges_total=int(doc["edges_total"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            return None

    def discard_manifest(self, run_key: str) -> None:
        """Remove one manifest (missing is fine)."""
        self._manifest_path(run_key).unlink(missing_ok=True)

    def manifests(self) -> list[RunManifest]:
        """Every readable manifest in the store, sorted by run key."""
        out = []
        for path in sorted(self.directory.glob("*.manifest.json")):
            run_key = path.name[: -len(".manifest.json")]
            manifest = self.get_manifest(run_key)
            if manifest is not None:
                out.append(manifest)
        return out


def _canonical_order(edges: np.ndarray) -> np.ndarray:
    """Lexicographic row order (the manifest's union invariant)."""
    edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
    return edges[np.lexsort((edges[:, 1], edges[:, 0]))]


def reshard_run(
    store: CheckpointStore,
    manifest: RunManifest,
    *,
    new_key: str,
    new_ranks: int,
    scheme: str,
    n: int,
    seed: int = 0,
) -> RunManifest:
    """Re-partition a completed run's shards onto a new rank count.

    The elastic-resume kernel: load every source shard (digest-verified,
    damaged ones deleted), rebuild the canonical edge union, verify it
    against the manifest's consensus ``union_digest``, then re-partition
    through the *same* ownership map a fresh ``new_ranks``-rank run would
    use (:func:`repro.distributed.shuffle.edge_owners`) and persist the
    new shards plus their manifest.  Ownership-exact re-partitioning plus
    the union-digest check make the resumed run's edge set bit-identical
    to the original regardless of R -> R'.

    Any damage found along the way raises the *transient*
    :class:`CheckpointCorruptionError` after discarding the damaged
    artifact, so a supervised retry falls back to fresh generation.
    """
    from repro.distributed.shuffle import edge_owners

    blocks = []
    for rank in range(manifest.nranks):
        key = f"{manifest.run_key}.rank{rank:05d}"
        shard = store.get(key, discard=True)
        if shard is None:
            store.discard_manifest(manifest.run_key)
            raise CheckpointCorruptionError(
                f"elastic resume: source shard {key!r} of manifest "
                f"{manifest.run_key!r} is missing; manifest discarded"
            )
        if shard.digest != manifest.shard_digests[rank]:
            store.discard_manifest(manifest.run_key)
            raise CheckpointCorruptionError(
                f"elastic resume: shard {key!r} digest "
                f"{shard.digest:#018x} does not match manifest "
                f"{manifest.shard_digests[rank]:#018x} (shards were "
                f"rewritten after the manifest); manifest discarded"
            )
        blocks.append(shard.edges)
    union = _canonical_order(
        np.vstack(blocks) if blocks else np.empty((0, 2), dtype=np.int64)
    )
    union_digest = edges_digest(union)
    if union_digest != manifest.union_digest:
        store.discard_manifest(manifest.run_key)
        raise CheckpointCorruptionError(
            f"elastic resume: shard union digest {union_digest:#018x} "
            f"does not match manifest consensus "
            f"{manifest.union_digest:#018x}; manifest discarded"
        )
    owners = edge_owners(union, new_ranks, scheme=scheme, n=n, seed=seed)
    shard_digests = []
    for rank in range(new_ranks):
        shard_edges = union[owners == rank]
        shard_digests.append(
            store.put(
                f"{new_key}.rank{rank:05d}", shard_edges, generated=0,
                resharded=True,
            )
        )
    new_manifest = RunManifest(
        run_key=new_key,
        family=manifest.family,
        nranks=new_ranks,
        shard_digests=tuple(shard_digests),
        union_digest=union_digest,
        edges_total=int(len(union)),
    )
    store.put_manifest(new_manifest)
    return new_manifest

"""Runtime collective-order sentinel: deadlocks become diagnostics.

The static pass (:mod:`repro.lint`) can only *warn* that a collective
looks rank-dependent; this module catches the divergence when it actually
happens.  :class:`CheckedCommunicator` wraps any communicator and
fingerprints every collective call -- operation name, caller's code
location, and a per-rank sequence number -- into a side channel shared by
the world (out-of-band: the fingerprints never travel through the
communicator being checked, so a broken collective pattern cannot break
the check).  Before executing collective *k*, each rank waits for every
peer's *k*-th fingerprint and verifies it matches; on mismatch all ranks
raise :class:`~repro.errors.CollectiveOrderError` naming **both**
divergent call sites instead of hanging until the recv timeout::

    CollectiveOrderError: collective sequence diverged at step 3:
      rank 0 called barrier at generator.py:210
      rank 1 called allreduce at generator.py:354

Enabling it
-----------
* ``make_thread_world(size, checked=True)`` -- explicit;
* environment variable ``REPRO_CHECK_COLLECTIVES=1`` -- picked up by
  ``make_thread_world`` and therefore by ``spmd_run(backend="thread")``,
  so any test run can be re-executed under the sentinel without code
  changes.

The sentinel serializes ranks at each collective boundary (that is the
point: it makes the ordering observable), so it is a debugging mode, not
a production path.  Point-to-point ``send``/``recv`` are deliberately not
fingerprinted -- rank-asymmetric p2p is the normal SPMD idiom.

The side channel is in-process shared state, so checked mode covers the
``inline`` and ``thread`` backends; the fork-based process backend would
need a shared-memory ledger and is rejected explicitly rather than
silently unchecked.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Callable

from repro.distributed.comm import Communicator, Request
from repro.errors import CollectiveOrderError

__all__ = [
    "CheckedCommunicator",
    "SentinelLedger",
    "checked_env_enabled",
    "sentinel_timeout",
]

#: Environment variable turning checked mode on for thread worlds.
CHECK_ENV = "REPRO_CHECK_COLLECTIVES"

#: Environment variable bounding how long a rank waits for peers to
#: announce their next collective before declaring divergence-by-absence.
TIMEOUT_ENV = "REPRO_SENTINEL_TIMEOUT"

_DEFAULT_TIMEOUT = 30.0


def checked_env_enabled() -> bool:
    """Is checked mode requested via :data:`CHECK_ENV`?"""
    return os.environ.get(CHECK_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def sentinel_timeout() -> float:
    """Seconds to wait for a peer's fingerprint (env-overridable)."""
    raw = os.environ.get(TIMEOUT_ENV)
    if raw is None:
        return _DEFAULT_TIMEOUT
    try:
        return float(raw)
    except ValueError:
        return _DEFAULT_TIMEOUT


class SentinelLedger:
    """World-shared fingerprint table (one per checked world).

    ``post``/``wait_for`` are keyed by ``(rank, seq)``; a rank that
    finishes its program marks itself done so waiting peers fail fast
    with "rank r finished after N collectives" instead of timing out.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._fps: dict[tuple[int, int], tuple[str, str]] = {}
        self._done: dict[int, int] = {}
        self._cv = threading.Condition()

    def post(self, rank: int, seq: int, fp: tuple[str, str]) -> None:
        with self._cv:
            self._fps[(rank, seq)] = fp
            self._cv.notify_all()

    def mark_done(self, rank: int, seq_count: int) -> None:
        with self._cv:
            self._done[rank] = seq_count
            self._cv.notify_all()

    def last_of(self, rank: int, before: int) -> tuple[int, tuple[str, str]] | None:
        """The latest fingerprint rank posted with ``seq < before``."""
        with self._cv:
            for seq in range(before - 1, -1, -1):
                fp = self._fps.get((rank, seq))
                if fp is not None:
                    return seq, fp
        return None

    def wait_for(
        self, rank: int, seq: int, timeout: float
    ) -> tuple[str, tuple[str, str] | int | None]:
        """Wait for rank's ``seq``-th fingerprint.

        Returns ``("fp", fingerprint)`` when it arrives, ``("done", n)``
        if the rank finished after ``n`` collectives without reaching
        ``seq``, or ``("timeout", None)``.
        """
        with self._cv:
            def ready() -> bool:
                return (rank, seq) in self._fps or (
                    rank in self._done and self._done[rank] <= seq
                )

            if not self._cv.wait_for(ready, timeout=timeout):
                return "timeout", None
            fp = self._fps.get((rank, seq))
            if fp is not None:
                return "fp", fp
            return "done", self._done[rank]


def _call_site() -> str:
    """``file.py:line`` of the first stack frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


class CheckedCommunicator(Communicator):
    """Sentinel wrapper: verify collective symmetry, then delegate.

    Wraps by containment, not inheritance: the inner communicator's own
    default collective implementations (``allgather`` -> ``gather`` ->
    ``send``/``recv``) run on the *inner* object, so each user-level
    collective is fingerprinted exactly once.
    """

    def __init__(
        self,
        inner: Communicator,
        ledger: SentinelLedger,
        *,
        timeout: float | None = None,
    ) -> None:
        self._inner = inner
        self._ledger = ledger
        self._timeout = timeout
        self._seq = 0

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def inner(self) -> Communicator:
        """The wrapped communicator."""
        return self._inner

    def __getattr__(self, name: str):
        # Delegate backend-specific extras (free_received_buffers, fault
        # counters, ...) so wrapper stacks -- Checked over Faulty over a
        # backend -- expose the whole surface of what they wrap.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    # ---- point-to-point: not fingerprinted ------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        return self._inner.recv(source, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        return self._inner.isend(obj, dest, tag)

    def irecv(self, source: int, tag: int = 0) -> Request:
        return self._inner.irecv(source, tag)

    # ---- sentinel core ---------------------------------------------------
    def finish(self) -> None:
        """Announce this rank's program completed (launcher calls this)."""
        self._ledger.mark_done(self.rank, self._seq)

    def _enter(self, op: str) -> None:
        seq = self._seq
        self._seq += 1
        site = _call_site()
        mine = (op, site)
        self._ledger.post(self.rank, seq, mine)
        timeout = self._timeout if self._timeout is not None else sentinel_timeout()
        for peer in range(self.size):
            if peer == self.rank:
                continue
            status, payload = self._ledger.wait_for(peer, seq, timeout)
            if status == "fp" and payload != mine:
                peer_op, peer_site = payload  # type: ignore[misc]
                raise CollectiveOrderError(
                    f"collective sequence diverged at step {seq}:\n"
                    f"  rank {self.rank} called {op} at {site}\n"
                    f"  rank {peer} called {peer_op} at {peer_site}"
                )
            if status == "done":
                raise CollectiveOrderError(
                    f"collective sequence diverged at step {seq}: "
                    f"rank {self.rank} called {op} at {site}, but rank "
                    f"{peer} finished its rank program after {payload} "
                    f"collective(s) and will never arrive"
                )
            if status == "timeout":
                last = self._ledger.last_of(peer, seq + 1)
                seen = (
                    f"its last collective was {last[1][0]} at {last[1][1]} "
                    f"(step {last[0]})"
                    if last is not None
                    else "it has executed no collectives"
                )
                raise CollectiveOrderError(
                    f"sentinel timeout at step {seq}: rank {self.rank} "
                    f"called {op} at {site}, but rank {peer} did not "
                    f"announce a matching collective within {timeout:.1f}s; "
                    f"{seen}"
                )

    # ---- collectives: fingerprint, verify, delegate ----------------------
    def barrier(self) -> None:
        self._enter("barrier")
        self._inner.barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._enter("bcast")
        return self._inner.bcast(obj, root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._enter("gather")
        return self._inner.gather(obj, root)

    def allgather(self, obj: Any) -> list[Any]:
        self._enter("allgather")
        return self._inner.allgather(obj)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        self._enter("allreduce")
        return self._inner.allreduce(obj, op)

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        self._enter("scatter")
        return self._inner.scatter(objs, root)

    def alltoall(self, objs: list[Any]) -> list[Any]:
        self._enter("alltoall")
        return self._inner.alltoall(objs)

    def alltoall_start(self, objs: list[Any]) -> Request:
        # The *start* is the symmetric event every rank must reach in the
        # same order -- fingerprint it.  The wait is rank-local (ranks may
        # overlap different amounts of compute before finishing), so
        # ``alltoall_finish`` is deliberately unfingerprinted; without
        # explicit methods here ``__getattr__`` would route both past the
        # sentinel entirely.
        self._enter("alltoall_start")
        return self._inner.alltoall_start(objs)

    def alltoall_finish(self, request: Request) -> list[Any]:
        return self._inner.alltoall_finish(request)

"""TCP socket communicator with self-healing connections.

The paper's deployment shape is genuinely multi-machine (HavoqGT/MPI at
up to 1.57M cores); this module gives the SPMD runtime a backend that
spans hosts: :class:`SocketCommunicator` implements the full
:class:`~repro.distributed.comm.Communicator` contract over a TCP full
mesh, bootstrapped through a tiny rendezvous service
(:class:`RendezvousServer`, also ``repro-kron serve-rendezvous``).

Wire protocol
-------------
Every message is one length-prefixed frame::

    <4s magic "KSK1"> <u8 kind> <u32 src rank> <i64 tag> <u64 seq> <u64 len> <payload>

``DATA`` frames carry one pickled payload per :meth:`send`; ``seq`` is a
per-peer monotonic sequence number.  ``HEARTBEAT`` frames double as
cumulative acknowledgements: the ``seq`` field carries the highest DATA
sequence the sender has delivered from this peer, which prunes the
sender-side replay buffer.  ``HELLO`` identifies the dialing rank when a
connection (or reconnection) is established.

Self-healing
------------
Connection direction is deterministic -- for a pair ``(i, j)`` with
``i < j``, rank ``j`` dials rank ``i`` -- so exactly one side owns
re-dialing after a break.  Every un-acknowledged DATA frame stays in a
per-peer replay buffer; on reconnect the dialer replays the tail and the
receiver drops frames whose ``seq`` it has already delivered (the same
dedup-by-sequence move the fault envelope of
:mod:`repro.distributed.faults` uses).  A transient socket error is
therefore invisible to the rank program.  A peer that cannot be reached
again inside the reconnect budget -- or whose process vanished, which
shows up as a refused connection -- is *declared dead*, and every
subsequent ``send``/``recv`` touching it raises
:class:`~repro.errors.RankDiedError` carrying the last-heartbeat age and
the peer's address, well before the full recv timeout.

Per the runtime's one-knob failure-detection ladder, every wait here
derives from :func:`repro.distributed.comm.recv_timeout` /
:func:`~repro.distributed.comm.poll_interval`; clocks come from
:mod:`repro.telemetry.clock` so traces stay deterministic under a fake
clock.
"""

from __future__ import annotations

import hashlib
import pickle
import queue
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.distributed.comm import (
    Communicator,
    poll_interval,
    recv_timeout,
)
from repro.errors import CommunicatorError, RankDiedError
from repro.telemetry.clock import monotonic
from repro.telemetry.session import NULL_TELEMETRY

__all__ = [
    "SocketCommunicator",
    "SocketCounters",
    "RendezvousServer",
    "make_socket_world",
    "parse_hostport",
]

#: Frame magic; versioned independently of the edge wire format ("KWR1").
FRAME_MAGIC = b"KSK1"

_HEADER = struct.Struct("<4sBIqQQ")  # magic, kind, src, tag, seq, length

_K_HELLO = 1
_K_DATA = 2
_K_HEARTBEAT = 3

#: Reconnect budget (and acceptor-side re-dial grace) as a fraction of the
#: recv timeout: dead-rank detection resolves well before a blocked recv
#: would give up on its own.
_RECONNECT_FRACTION = 0.25

#: Consecutive refused connections before a peer is declared dead -- a
#: refused dial means no listener, i.e. the peer process is gone.
_REFUSED_LIMIT = 3

#: Listen backlog: every higher rank may dial before our accept loop runs.
_BACKLOG = 128


def parse_hostport(spec: str) -> tuple[str, int]:
    """Parse ``"host:port"`` (the ``--rendezvous`` flag format)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise CommunicatorError(
            f"rendezvous address {spec!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise CommunicatorError(
            f"rendezvous address {spec!r} has a non-numeric port"
        ) from exc


def _world_token(roster: Sequence[tuple[str, int]]) -> int:
    """64-bit world identity derived from the roster.

    Ephemeral listener ports make each world's roster effectively unique,
    so every HELLO carries this token and the acceptor rejects mismatches.
    Without it, a straggling reconnect thread of a just-closed world
    dialing a port the kernel has since reassigned to a *new* world's
    listener would be installed into the fresh mesh as a ghost peer --
    connected, never speaking, and silently displacing the real link.
    """
    blob = repr([tuple(entry) for entry in roster]).encode()
    return int.from_bytes(
        hashlib.blake2b(blob, digest_size=8).digest(), "little"
    )


def _make_listener(host: str) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, 0))
    sock.listen(_BACKLOG)
    return sock


def _read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(sock: socket.socket) -> tuple[int, int, int, int, bytes]:
    """Read one frame; returns ``(kind, src, tag, seq, payload)``."""
    header = _read_exact(sock, _HEADER.size)
    magic, kind, src, tag, seq, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise CommunicatorError(
            f"bad frame magic {magic!r} (not a repro socket peer?)"
        )
    payload = _read_exact(sock, length) if length else b""
    return kind, src, tag, seq, payload


def _send_blob(sock: socket.socket, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(struct.pack("<Q", len(payload)) + payload)


def _recv_blob(sock: socket.socket) -> Any:
    (length,) = struct.unpack("<Q", _read_exact(sock, 8))
    return pickle.loads(_read_exact(sock, length))


@dataclass
class SocketCounters:
    """What one rank's socket layer actually did (tests/telemetry).

    Harvested into telemetry metrics as ``sock.<field>`` by
    :meth:`repro.telemetry.session.RankTelemetry.finalize`, which is how
    reconnect/replay counts reach the chaos report.
    """

    frames_sent: int = 0
    frames_received: int = 0
    deduplicated: int = 0
    replayed: int = 0
    disconnects: int = 0
    reconnects: int = 0
    heartbeats_sent: int = 0
    heartbeats_received: int = 0


class _Peer:
    """Per-peer connection state: socket, replay buffer, liveness."""

    __slots__ = (
        "rank", "addr", "sock", "send_lock", "state_lock", "connected",
        "joined", "replay", "next_seq", "acked", "last_seen",
        "last_heartbeat", "disconnected_at", "declared_dead", "dead_reason",
        "healing", "partitioned", "send_delay_s",
    )

    def __init__(self, rank: int, addr: tuple[str, int]) -> None:
        self.rank = rank
        self.addr = addr
        self.sock: socket.socket | None = None
        self.send_lock = threading.Lock()
        self.state_lock = threading.Lock()
        self.connected = threading.Event()
        #: Latches on first successful install and never clears: "this
        #: peer has joined the mesh at least once".  The bootstrap barrier
        #: waits on this, not on ``connected``, so a peer that joined and
        #: then exited cleanly (its program finished instantly) does not
        #: stall slower ranks still entering the barrier.
        self.joined = threading.Event()
        #: Un-acknowledged DATA frames as (seq, bytes), replayed on reconnect.
        self.replay: list[tuple[int, bytes]] = []
        self.next_seq = 0
        self.acked = 0
        self.last_seen = 0
        self.last_heartbeat: float | None = None
        self.disconnected_at: float | None = None
        self.declared_dead = False
        self.dead_reason = ""
        self.healing = False
        self.partitioned = False
        self.send_delay_s = 0.0


class SocketCommunicator(Communicator):
    """One rank of a TCP-mesh world (see module docstring).

    Collectives, ``isend``/``irecv``, and the split-phase
    ``alltoall_start``/``alltoall_finish`` are inherited from the
    :class:`Communicator` base and therefore route through the framed,
    sequence-numbered point-to-point primitives -- replay/dedup protects
    collective traffic with no extra plumbing.  ``probe`` exposes the
    optional non-blocking surface the split-phase requests use.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        roster: Sequence[tuple[str, int]],
        listener: socket.socket,
    ) -> None:
        if not (0 <= rank < size):
            raise CommunicatorError(f"rank {rank} out of range for size {size}")
        if len(roster) != size:
            raise CommunicatorError(
                f"roster has {len(roster)} entries for world size {size}"
            )
        self._rank = rank
        self._size = size
        self._listener = listener
        self._closed = False
        self._peers: dict[int, _Peer] = {
            r: _Peer(r, tuple(roster[r])) for r in range(size) if r != rank
        }
        self._boxes: dict[tuple[int, int], queue.Queue] = {}
        self._boxes_lock = threading.Lock()
        self._world_token = _world_token(roster)
        self._telemetry = NULL_TELEMETRY
        self.sock_counters = SocketCounters()
        # Decorrelates reconnect backoff across ranks without reading the
        # wall clock (determinism lint); exact values are uncritical.
        self._jitter = random.Random((rank << 16) ^ size)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"sock-accept-{rank}", daemon=True
        )
        self._accept_thread.start()
        # Deterministic direction: this rank dials every lower rank.
        for r in range(rank):
            self._dial(self._peers[r])
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name=f"sock-hb-{rank}", daemon=True
        )
        self._heartbeat_thread.start()

    # ---- bootstrap -------------------------------------------------------
    @classmethod
    def connect(
        cls,
        rendezvous: str | tuple[str, int],
        rank: int,
        size: int,
        *,
        host: str = "127.0.0.1",
    ) -> "SocketCommunicator":
        """Bootstrap via a rendezvous service: register, get the roster.

        Each rank binds an ephemeral listener, registers
        ``(rank, host, port)`` with the rendezvous server, and blocks
        until the server has seen all ``size`` ranks and broadcast the
        roster.  ``host`` is the address this rank advertises to peers
        (the interface other hosts can reach it on).
        """
        addr = (
            parse_hostport(rendezvous)
            if isinstance(rendezvous, str)
            else tuple(rendezvous)
        )
        listener = _make_listener(host)
        port = listener.getsockname()[1]
        try:
            sock = socket.create_connection(addr, timeout=recv_timeout())
        except OSError as exc:
            listener.close()
            raise CommunicatorError(
                f"rendezvous at {addr[0]}:{addr[1]} unreachable: {exc}"
            ) from exc
        try:
            sock.settimeout(recv_timeout())
            _send_blob(sock, ("register", size, rank, host, port))
            reply = _recv_blob(sock)
        except (OSError, ConnectionError, EOFError) as exc:
            listener.close()
            raise CommunicatorError(
                f"rank {rank}: rendezvous round at {addr[0]}:{addr[1]} "
                f"failed before the roster arrived: {exc}"
            ) from exc
        finally:
            sock.close()
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            listener.close()
            raise CommunicatorError(f"rendezvous rejected rank {rank}: {reply[1]}")
        roster = [tuple(entry) for entry in reply]
        comm = cls(rank, size, roster, listener)
        # Bootstrap is a mesh barrier: without it a rank whose program
        # never communicates could finish and close its listener while
        # slower peers are still dialing in (connection refused).
        comm._await_mesh()
        return comm

    def _await_mesh(self) -> None:
        """Block until every peer has joined the mesh at least once.

        Waits on the latching ``joined`` event rather than ``connected``:
        a fast peer may establish its links, finish its (trivial) rank
        program, and close -- tearing the live connection down again
        while this rank is still entering the barrier.  That peer *did*
        join; only a peer that never showed up is a bootstrap failure.
        """
        deadline = monotonic() + recv_timeout()
        for peer in self._peers.values():
            remaining = deadline - monotonic()
            if remaining <= 0 or not peer.joined.wait(timeout=remaining):
                raise CommunicatorError(
                    f"rank {self._rank}: peer {peer.rank} at "
                    f"{self._peer_desc(peer)} did not join the mesh within "
                    f"{recv_timeout():.1f}s of the roster"
                )

    # ---- Communicator surface -------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def bind_telemetry(self, telemetry) -> None:
        """Attach a rank telemetry sink (heartbeat/reconnect spans).

        Runs one heartbeat pass synchronously so every traced rank
        records at least one ``sock.heartbeat`` span even when the rank
        program finishes inside a single heartbeat interval (an extra
        heartbeat is harmless -- it just acks sooner).
        """
        self._telemetry = telemetry
        self._heartbeat_tick()

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_dest(dest)
        if dest == self._rank:
            raise CommunicatorError("send to self would deadlock recv ordering")
        peer = self._peers[dest]
        self._raise_if_dead(peer)
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        with peer.send_lock:
            peer.next_seq += 1
            frame = (
                _HEADER.pack(
                    FRAME_MAGIC, _K_DATA, self._rank, tag, peer.next_seq,
                    len(payload),
                )
                + payload
            )
            # Buffer before writing: a frame lost to a mid-write socket
            # error is replayed verbatim after the reconnect.
            peer.replay.append((peer.next_seq, frame))
            if peer.send_delay_s > 0:
                time.sleep(peer.send_delay_s)  # slow-peer fault hook
            sock = peer.sock
            if sock is None:
                return  # disconnected: the frame rides the replay buffer
            try:
                sock.sendall(frame)
                self.sock_counters.frames_sent += 1
            except OSError:
                self._conn_broken(peer, sock)

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_dest(source)
        if source == self._rank:
            raise CommunicatorError("recv from self is not supported")
        peer = self._peers[source]
        box = self._box(source, tag)
        timeout = recv_timeout()
        deadline = monotonic() + timeout
        while True:
            self._raise_if_dead(peer)
            try:
                return box.get(timeout=poll_interval())
            except queue.Empty:
                pass
            if monotonic() > deadline:
                raise CommunicatorError(
                    f"rank {self._rank} timed out after {timeout:g}s waiting "
                    f"to receive from rank {source} (tag {tag}) over TCP; "
                    f"peer {self._peer_desc(peer)} is connected but silent "
                    f"({self._age_desc(peer)}) -- the sender never sent or "
                    f"is stalled"
                )

    def probe(self, source: int, tag: int = 0) -> bool:
        """True if a message from ``source`` with ``tag`` is deliverable."""
        self._check_dest(source)
        if source == self._rank:
            raise CommunicatorError("probe from self is not supported")
        return not self._box(source, tag).empty()

    def barrier(self) -> None:
        """Dissemination barrier: log2(size) point-to-point rounds."""
        k = 1
        while k < self._size:
            self.send(None, (self._rank + k) % self._size, tag=-100 - k)
            self.recv((self._rank - k) % self._size, tag=-100 - k)
            k *= 2

    def close(self) -> None:
        """Tear down sockets and background threads (idempotent)."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        for peer in self._peers.values():
            with peer.state_lock:
                sock, peer.sock = peer.sock, None
                peer.connected.clear()
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass

    # ---- fault-injection hooks ------------------------------------------
    def _fault_peer(self, peer_rank: int | None) -> _Peer:
        if peer_rank is None:
            peer_rank = (self._rank + 1) % self._size
        if peer_rank == self._rank or peer_rank not in self._peers:
            raise CommunicatorError(
                f"no socket peer {peer_rank} on rank {self._rank}"
            )
        return self._peers[peer_rank]

    def inject_disconnect(self, peer_rank: int | None = None) -> None:
        """Abruptly close one peer connection (self-heals via replay).

        Waits for the link to come up first: an early injection racing
        bootstrap would otherwise close nothing and silently test the
        happy path instead of the heal.
        """
        peer = self._fault_peer(peer_rank)
        peer.connected.wait(recv_timeout())
        with peer.state_lock:
            sock = peer.sock
        if sock is not None:
            try:
                # shutdown() (not just close()) wakes readers blocked on
                # this socket on both ends immediately.
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:  # pragma: no cover
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def inject_partition(self, peer_rank: int | None = None) -> None:
        """Sever one peer link for good: no reconnect is ever accepted."""
        peer = self._fault_peer(peer_rank)
        peer.partitioned = True
        self.inject_disconnect(peer.rank)

    def set_send_delay(
        self, seconds: float, peer_rank: int | None = None
    ) -> None:
        """Slow-peer fault: stall every DATA frame to one (or all) peers."""
        targets = (
            [self._fault_peer(peer_rank)]
            if peer_rank is not None
            else list(self._peers.values())
        )
        for peer in targets:
            peer.send_delay_s = float(seconds)

    # ---- internals -------------------------------------------------------
    def _box(self, source: int, tag: int) -> queue.Queue:
        with self._boxes_lock:
            return self._boxes.setdefault((source, tag), queue.Queue())

    def _peer_desc(self, peer: _Peer) -> str:
        return f"{peer.addr[0]}:{peer.addr[1]}"

    def _heartbeat_age(self, peer: _Peer) -> float | None:
        if peer.last_heartbeat is None:
            return None
        return monotonic() - peer.last_heartbeat

    def _age_desc(self, peer: _Peer) -> str:
        age = self._heartbeat_age(peer)
        if age is None:
            return "no heartbeat ever received"
        return f"last heartbeat {age:.2f}s ago"

    def _declare_dead(self, peer: _Peer, reason: str) -> None:
        peer.dead_reason = reason
        peer.declared_dead = True

    def _raise_if_dead(self, peer: _Peer) -> None:
        if not peer.declared_dead and not peer.connected.is_set():
            # Acceptor side of a broken pair: the peer owns re-dialing;
            # if it stays gone past the reconnect grace, it is dead.
            t0 = peer.disconnected_at
            grace = _RECONNECT_FRACTION * recv_timeout()
            if t0 is not None and not peer.healing and monotonic() - t0 > grace:
                self._declare_dead(
                    peer,
                    f"connection lost and not re-established within "
                    f"{grace:.2f}s",
                )
        if peer.declared_dead:
            raise RankDiedError(
                f"rank {self._rank}: peer rank {peer.rank} at "
                f"{self._peer_desc(peer)} declared dead "
                f"({peer.dead_reason}); {self._age_desc(peer)}",
                ranks=(peer.rank,),
                heartbeat_age_s=self._heartbeat_age(peer),
                address=self._peer_desc(peer),
            )

    def _send_hello(self, sock: socket.socket) -> None:
        # The seq field of a HELLO carries the world token (see
        # _world_token); the acceptor drops connections from other worlds.
        sock.sendall(_HEADER.pack(
            FRAME_MAGIC, _K_HELLO, self._rank, 0, self._world_token, 0
        ))

    def _install(self, peer: _Peer, sock: socket.socket) -> None:
        """Adopt a fresh connection: replace, replay the unacked tail."""
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with peer.send_lock:
            with peer.state_lock:
                old, peer.sock = peer.sock, None
                replayable = [f for s, f in peer.replay if s > peer.acked]
            if old is not None:
                try:
                    old.close()
                except OSError:  # pragma: no cover
                    pass
            try:
                for frame in replayable:
                    sock.sendall(frame)
            except OSError:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
                raise
            self.sock_counters.replayed += len(replayable)
            with peer.state_lock:
                peer.sock = sock
                peer.disconnected_at = None
                peer.last_heartbeat = monotonic()
                peer.declared_dead = False
                peer.dead_reason = ""
                peer.connected.set()
                peer.joined.set()
        threading.Thread(
            target=self._reader,
            args=(peer, sock),
            name=f"sock-r{self._rank}-from{peer.rank}",
            daemon=True,
        ).start()

    def _dial(self, peer: _Peer) -> None:
        """Bootstrap dial (lower-rank peer); retries inside one timeout."""
        deadline = monotonic() + recv_timeout()
        while True:
            try:
                sock = socket.create_connection(
                    peer.addr, timeout=recv_timeout()
                )
                self._send_hello(sock)
                self._install(peer, sock)
                return
            except OSError as exc:
                if monotonic() > deadline:
                    raise CommunicatorError(
                        f"rank {self._rank} could not connect to rank "
                        f"{peer.rank} at {self._peer_desc(peer)} during "
                        f"bootstrap: {exc}"
                    ) from exc
                time.sleep(poll_interval() / 4.0)

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                conn.settimeout(recv_timeout())
                kind, src, _tag, token, _payload = _read_frame(conn)
            except (OSError, ConnectionError, CommunicatorError):
                conn.close()
                continue
            peer = self._peers.get(src)
            if (
                kind != _K_HELLO
                or token != self._world_token
                or peer is None
                or peer.partitioned
            ):
                conn.close()
                continue
            try:
                self._install(peer, conn)
            except OSError:
                continue

    def _reader(self, peer: _Peer, sock: socket.socket) -> None:
        counters = self.sock_counters
        try:
            while not self._closed:
                kind, _src, tag, seq, payload = _read_frame(sock)
                if kind == _K_DATA:
                    counters.frames_received += 1
                    with peer.state_lock:
                        if seq <= peer.last_seen:
                            # Replayed frame already delivered pre-break.
                            counters.deduplicated += 1
                            continue
                        peer.last_seen = seq
                    self._box(peer.rank, tag).put(pickle.loads(payload))
                elif kind == _K_HEARTBEAT:
                    counters.heartbeats_received += 1
                    peer.last_heartbeat = monotonic()
                    self._prune_replay(peer, ack=seq)
        except (OSError, ConnectionError, CommunicatorError):
            pass
        self._conn_broken(peer, sock)

    def _prune_replay(self, peer: _Peer, ack: int) -> None:
        with peer.state_lock:
            if ack > peer.acked:
                peer.acked = ack
                peer.replay = [(s, f) for s, f in peer.replay if s > ack]

    def _conn_broken(self, peer: _Peer, sock: socket.socket) -> None:
        spawn = False
        with peer.state_lock:
            if peer.sock is not sock:
                return  # already replaced by a newer connection
            peer.sock = None
            peer.connected.clear()
            peer.disconnected_at = monotonic()
            if (
                not self._closed
                and not peer.healing
                and not peer.partitioned
                and peer.rank < self._rank
            ):
                peer.healing = True
                spawn = True
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
        if self._closed:
            return
        self.sock_counters.disconnects += 1
        if spawn:
            threading.Thread(
                target=self._reconnect,
                args=(peer,),
                name=f"sock-heal-{self._rank}-to{peer.rank}",
                daemon=True,
            ).start()

    def _reconnect(self, peer: _Peer) -> None:
        """Bounded retry/backoff re-dial; replay happens in ``_install``."""
        budget = _RECONNECT_FRACTION * recv_timeout()
        deadline = monotonic() + budget
        pause = poll_interval() / 4.0
        refused = 0
        reason = ""
        with self._telemetry.span("sock.reconnect", cat="sock",
                                  peer=peer.rank):
            while not self._closed and not peer.partitioned:
                try:
                    sock = socket.create_connection(
                        peer.addr, timeout=poll_interval() * 4.0
                    )
                    self._send_hello(sock)
                    # Count before installing: the replay inside _install
                    # releases peers blocked on this link, and the rank fn
                    # may finish (and harvest counters) immediately after.
                    self.sock_counters.reconnects += 1
                    self._install(peer, sock)
                    peer.healing = False
                    return
                except ConnectionRefusedError:
                    refused += 1
                    if refused >= _REFUSED_LIMIT:
                        reason = (
                            f"connection refused {refused}x -- no listener "
                            f"at {self._peer_desc(peer)}, peer process gone"
                        )
                        break
                except OSError:
                    refused = 0
                if monotonic() > deadline:
                    reason = (
                        f"reconnect budget exhausted after {budget:.2f}s"
                    )
                    break
                time.sleep(pause)
                # Decorrelated jitter keeps rank re-dials from synchronizing.
                pause = min(
                    poll_interval(),
                    self._jitter.uniform(poll_interval() / 4.0, pause * 2.0),
                )
        peer.healing = False
        if not self._closed and not peer.partitioned and reason:
            self._declare_dead(peer, reason)

    def _heartbeat_tick(self) -> None:
        counters = self.sock_counters
        with self._telemetry.span("sock.heartbeat", cat="sock"):
            for peer in self._peers.values():
                if not peer.connected.is_set():
                    continue
                frame = _HEADER.pack(
                    FRAME_MAGIC, _K_HEARTBEAT, self._rank, 0,
                    peer.last_seen, 0,
                )
                with peer.send_lock:
                    sock = peer.sock
                    if sock is None:
                        continue
                    try:
                        sock.sendall(frame)
                        counters.heartbeats_sent += 1
                    except OSError:
                        self._conn_broken(peer, sock)

    def _heartbeat_loop(self) -> None:
        while not self._closed:
            self._heartbeat_tick()
            time.sleep(poll_interval())


class RendezvousServer:
    """Roster bootstrap for socket worlds (``repro-kron serve-rendezvous``).

    Each rank connects, registers ``(size, rank, host, port)``, and blocks
    until all ``size`` ranks of the round have registered; the server then
    broadcasts the roster (listen addresses indexed by rank) to every
    waiting connection and resets for the next round -- so one long-lived
    server bootstraps every attempt of a supervised run, and sequential
    runs, without restarts.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(_BACKLOG)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._closed = False
        self._cond = threading.Condition()
        self._round: dict[int, tuple[str, int]] = {}
        self._round_size: int | None = None
        self._epoch = 0
        self._roster: list[tuple[str, int]] | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "RendezvousServer":
        self._thread = threading.Thread(
            target=self._accept_loop, name="rendezvous-accept", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._cond:
            self._cond.notify_all()

    def __enter__(self) -> "RendezvousServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(recv_timeout())
            try:
                msg = _recv_blob(conn)
            except (OSError, ConnectionError, EOFError,
                    pickle.UnpicklingError):
                return  # probe connections close without registering
            if (
                not isinstance(msg, tuple)
                or len(msg) != 5
                or msg[0] != "register"
            ):
                _send_blob(conn, ("error", f"malformed registration: {msg!r}"))
                return
            _, size, rank, host, port = msg
            with self._cond:
                if self._round_size is None:
                    self._round_size = int(size)
                if int(size) != self._round_size or not (0 <= rank < size):
                    _send_blob(
                        conn,
                        (
                            "error",
                            f"rank {rank}/size {size} inconsistent with the "
                            f"current round (size {self._round_size})",
                        ),
                    )
                    return
                self._round[int(rank)] = (str(host), int(port))
                my_epoch = self._epoch
                if len(self._round) == self._round_size:
                    self._roster = [
                        self._round[r] for r in range(self._round_size)
                    ]
                    self._epoch += 1
                    self._round = {}
                    self._round_size = None
                    self._cond.notify_all()
                else:
                    deadline = monotonic() + recv_timeout()
                    while self._epoch == my_epoch and not self._closed:
                        remaining = deadline - monotonic()
                        if remaining <= 0:
                            return  # partial round: peer gets EOF, retries
                        self._cond.wait(timeout=min(remaining, poll_interval()))
                    if self._closed:
                        return
                roster = self._roster
            _send_blob(conn, roster)
        except OSError:  # pragma: no cover - client vanished mid-reply
            pass
        finally:
            conn.close()


def make_socket_world(
    size: int,
    *,
    wrap: Callable[[Communicator], Communicator] | None = None,
    host: str = "127.0.0.1",
) -> list[Communicator]:
    """Create ``size`` socket communicators meshed over localhost.

    The in-process counterpart of the rendezvous bootstrap (all listeners
    are bound before any rank dials, exactly like a rendezvous round), for
    conformance tests and single-host experiments; ``wrap`` interposes a
    per-rank wrapper like :func:`~repro.distributed.comm.make_thread_world`.
    """
    if size < 1:
        raise CommunicatorError(f"world size must be >= 1, got {size}")
    listeners = [_make_listener(host) for _ in range(size)]
    roster = [sock.getsockname()[:2] for sock in listeners]
    comms: list[Communicator] = [
        SocketCommunicator(r, size, roster, listeners[r]) for r in range(size)
    ]
    for comm in comms:
        comm._await_mesh()
    if wrap is not None:
        comms = [wrap(c) for c in comms]
    return comms

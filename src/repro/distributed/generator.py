"""Distributed nonstochastic Kronecker generation (Section III).

Rank programs implementing the paper's generator under both partitioning
schemes.  Each rank:

1. takes its slice of the factor edge space (1-D: a shard of A with B
   replicated; 2-D: an (A-part, B-part) grid cell per Remark 1);
2. streams its product edges in bounded chunks, mirroring the asynchronous
   chunked sends of the HavoqGT implementation;
3. optionally routes each edge to its storage owner
   (:mod:`repro.distributed.shuffle`), so generation and storage placement
   stay decoupled.

Routing modes (``routing=``)
----------------------------
``"fused"`` (default):
    the generate->route hot path.  Under ``source_block`` storage the
    routed kernels of :mod:`repro.kronecker.product` emit every chunk
    *pre-bucketed by owner* -- owner assignment is computed analytically
    from the product index structure, so the expand-then-argsort step of
    the legacy path disappears entirely.  Under ``edge_hash`` the chunk is
    expanded densely but bucketed with the sort-free counting scatter.
``"legacy"``:
    expand -> stable-argsort bucket -> exchange, kept selectable for A/B
    benchmarking (``benchmarks/bench_generation_remark1.py``) and as the
    reference the equivalence property tests compare against.

Both modes produce identical edge multisets; see
``tests/property/test_routed_equivalence.py``.

Generation models (``model=``)
------------------------------
``"exact"`` (default):
    every enumerated product edge is emitted -- the paper's
    nonstochastic generator.
``"skg"``:
    the stochastic Kronecker tier (:mod:`repro.skg`).  The factors
    enumerate the *candidate* space (all ordered vertex pairs, via
    :func:`repro.graph.generators.complete_with_loops`) and a
    deterministic hash-thresholded acceptance filter
    (:class:`repro.skg.sample.SKGAcceptor`) runs inside the generate
    span on every scheme x routing x pipeline path.  Because acceptance
    is a pure function of ``(skg_seed, u, v)``, the filtered output is
    bit-identical across backends, chunk sizes, retries, and elastic
    re-sharding -- the same invariants the exact model enjoys.
    ``edges.generated`` counts *accepted* edges (what enters routing and
    storage, keeping trace reconciliation intact); the filter's own
    volume lands on the ``skg.accepted`` / ``skg.rejected`` counters.

The rank functions are plain module-level callables taking their
:class:`Communicator` first, runnable under any backend via
:func:`repro.distributed.launcher.spmd_run`.  Convenience drivers
(:func:`generate_distributed`) wire partitioning + launch + reassembly and
are what the examples, tests, and benches call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.comm import Communicator
from repro.distributed.launcher import spmd_run
from repro.distributed.partition import partition_edges_1d, partition_edges_2d
from repro.distributed.shuffle import (
    WIRE_FORMATS,
    bucket_edges,
    exchange_edges,
    exchange_edges_finish,
    exchange_edges_start,
    shuffle_to_owners,
)
from repro.errors import PartitionError
from repro.graph.edgelist import EdgeList
from repro.kronecker.product import (
    DEFAULT_CHUNK,
    iter_kron_product,
    iter_kron_product_routed,
    kron_routed_full,
    routed_chunk_count,
)
from repro.telemetry.session import NULL_TELEMETRY, telemetry_of

__all__ = [
    "RankOutput",
    "generate_rank_1d",
    "generate_rank_1d_pipelined",
    "generate_rank_2d",
    "generate_distributed",
]

_ROUTINGS = ("fused", "legacy")
_PIPELINES = ("sync", "async")
_EMPTY = np.empty((0, 2), dtype=np.int64)


@dataclass(frozen=True)
class RankOutput:
    """What one rank produced.

    Attributes
    ----------
    rank:
        Producer rank.
    edges:
        The product edges this rank ends up *storing* (post-shuffle when a
        storage scheme is active, otherwise its generated edges).
    generated:
        How many edges this rank generated (pre-shuffle), for load stats.
    """

    rank: int
    edges: np.ndarray
    generated: int


def _check_routing(routing: str) -> None:
    if routing not in _ROUTINGS:
        raise PartitionError(
            f"unknown routing {routing!r}; use 'fused' or 'legacy'"
        )


def _check_pipeline(pipeline: str) -> None:
    if pipeline not in _PIPELINES:
        raise PartitionError(
            f"unknown pipeline {pipeline!r}; use 'sync' or 'async'"
        )


def _check_wire(wire: str) -> None:
    if wire not in WIRE_FORMATS:
        raise PartitionError(
            f"unknown wire format {wire!r}; use one of {WIRE_FORMATS}"
        )


def _check_model(model: str, skg, n_c: int) -> None:
    if model not in ("exact", "skg"):
        raise PartitionError(
            f"unknown model {model!r}; use 'exact' or 'skg'"
        )
    if model == "exact":
        if skg is not None:
            raise PartitionError(
                "model='exact' does not take an SKG spec; pass model='skg'"
            )
        return
    from repro.skg.model import SKGSpec

    if not isinstance(skg, SKGSpec):
        raise PartitionError(
            f"model='skg' requires an SKGSpec, got {type(skg).__name__}"
        )
    if skg.n != n_c:
        raise PartitionError(
            f"SKG spec covers 2**{skg.k} = {skg.n} vertices but the factor "
            f"product has {n_c}; the factors must enumerate exactly the "
            f"spec's candidate space (see repro.skg.distributed."
            f"skg_candidate_factors)"
        )


def _make_acceptor(skg):
    """Build the per-rank SKG acceptance filter (None for exact runs).

    Imported lazily: :mod:`repro.skg` depends on this module for its
    distributed drivers, so a top-level import would be circular.
    """
    if skg is None:
        return None
    from repro.skg.sample import SKGAcceptor

    return SKGAcceptor(skg)


def _emit_skg_counters(tel, acceptor) -> None:
    """Report the acceptance filter's volume on the rank's telemetry."""
    if acceptor is not None:
        tel.add("skg.accepted", acceptor.accepted)
        tel.add("skg.rejected", acceptor.rejected)


def _generate_cells(
    cells: list[tuple[EdgeList, EdgeList]], chunk_size: int, acceptor=None
) -> tuple[np.ndarray, int]:
    """Stream this rank's cell products into one exactly-sized array.

    The product size of every cell is known up front
    (``|E_A_part| * |E_B_part|``), so the output is allocated once and each
    streamed chunk is written into its slice -- peak memory is the output
    plus one chunk, half the chunk-list-then-vstack peak of the previous
    implementation.

    With an SKG ``acceptor`` the surviving count is not known up front, so
    accepted chunk slices are collected and stacked instead; the returned
    count is the *accepted* volume.
    """
    if acceptor is not None:
        kept: list[np.ndarray] = []
        for part_a, part_b in cells:
            for chunk in iter_kron_product(part_a, part_b, chunk_size):
                accepted = acceptor.filter_edges(chunk)
                if len(accepted):
                    kept.append(accepted)
        edges = np.vstack(kept) if kept else _EMPTY
        return edges, len(edges)
    total = sum(a.m_directed * b.m_directed for a, b in cells)
    if total == 0:
        return _EMPTY, 0
    edges = np.empty((total, 2), dtype=np.int64)
    fill = 0
    for part_a, part_b in cells:
        for chunk in iter_kron_product(part_a, part_b, chunk_size):
            edges[fill : fill + len(chunk)] = chunk
            fill += len(chunk)
    assert fill == total
    return edges, total


def _generate_cells_routed(
    cells: list[tuple[EdgeList, EdgeList]],
    nparts: int,
    n_c: int,
    chunk_size: int,
    tel=NULL_TELEMETRY,
    acceptor=None,
) -> tuple[list[np.ndarray], int]:
    """Generate this rank's cells directly into per-owner buckets.

    Each cell's per-owner slices are exactly preallocated by
    :func:`kron_routed_full`; multi-cell ranks (folded 2-D grids) stack the
    per-cell buckets owner-wise.  On the fused path owner assignment is
    analytic, so the "route" phase degenerates to the owner-wise stack --
    the trace shows it that way on purpose.  The SKG ``acceptor`` (when
    present) filters each owner bucket inside the generate span.
    """
    per_owner: list[list[np.ndarray]] = [[] for _ in range(nparts)]
    generated = 0
    with tel.span("generate", cat="phase", routing="fused"):
        for part_a, part_b in cells:
            buckets = kron_routed_full(part_a, part_b, nparts, n_c, chunk_size)
            for d, blk in enumerate(buckets):
                if acceptor is not None:
                    blk = acceptor.filter_edges(blk)
                if len(blk):
                    per_owner[d].append(blk)
                    generated += len(blk)
    with tel.span("route", cat="phase", method="fused"):
        outgoing = [
            np.vstack(blks) if len(blks) > 1 else (blks[0] if blks else _EMPTY)
            for blks in per_owner
        ]
    return outgoing, generated


def _route_and_store(
    comm: Communicator,
    cells: list[tuple[EdgeList, EdgeList]],
    n_c: int,
    storage: str | None,
    chunk_size: int,
    routing: str,
    wire: str = "raw",
    skg=None,
) -> RankOutput:
    """Shared body of the batch (non-pipelined) rank programs."""
    _check_routing(routing)
    _check_wire(wire)
    tel = telemetry_of(comm)
    acceptor = _make_acceptor(skg)
    if storage is None or comm.size == 1:
        with tel.span("generate", cat="phase", routing=routing):
            edges, generated = _generate_cells(cells, chunk_size, acceptor)
        _emit_skg_counters(tel, acceptor)
        tel.add("edges.generated", generated)
        tel.add("edges.stored", len(edges))
        return RankOutput(comm.rank, edges, generated)
    if routing == "fused" and storage == "source_block":
        outgoing, generated = _generate_cells_routed(
            cells, comm.size, n_c, chunk_size, tel, acceptor
        )
        edges = exchange_edges(comm, outgoing, wire=wire)
    else:
        with tel.span("generate", cat="phase", routing=routing):
            edges, generated = _generate_cells(cells, chunk_size, acceptor)
        method = "scatter" if routing == "fused" else "argsort"
        edges = shuffle_to_owners(
            comm, edges, scheme=storage, n=n_c, method=method, wire=wire
        )
    _emit_skg_counters(tel, acceptor)
    tel.add("edges.generated", generated)
    tel.add("edges.stored", len(edges))
    return RankOutput(comm.rank, edges, generated)


def generate_rank_1d(
    comm: Communicator,
    parts_a: list[EdgeList],
    el_b: EdgeList,
    n_c: int,
    storage: str | None,
    chunk_size: int = DEFAULT_CHUNK,
    routing: str = "fused",
    wire: str = "raw",
    skg=None,
) -> RankOutput:
    """Rank program for the 1-D scheme: ``C_r = A_r (x) B``.

    ``parts_a`` is the full shard list (replicated, tiny) and each rank
    picks ``parts_a[comm.rank]`` -- matching the paper's file-per-rank read
    without I/O in the hot path.  ``storage=None`` keeps generated edges
    local; ``"source_block"``/``"edge_hash"`` route them to owners, fused
    with generation by default (see module docstring).  ``skg`` (an
    :class:`repro.skg.model.SKGSpec`) switches on stochastic acceptance.
    """
    part = parts_a[comm.rank]
    return _route_and_store(
        comm, [(part, el_b)], n_c, storage, chunk_size, routing, wire, skg
    )


def generate_rank_2d(
    comm: Communicator,
    assignments: list[list[tuple[EdgeList, EdgeList]]],
    n_c: int,
    storage: str | None,
    chunk_size: int = DEFAULT_CHUNK,
    routing: str = "fused",
    wire: str = "raw",
    skg=None,
) -> RankOutput:
    """Rank program for Remark 1's 2-D scheme: ``A_{r % Rh} (x) B_{r // Rh}``."""
    return _route_and_store(
        comm, assignments[comm.rank], n_c, storage, chunk_size, routing,
        wire, skg,
    )


def generate_distributed(
    el_a: EdgeList,
    el_b: EdgeList,
    nranks: int,
    *,
    scheme: str = "1d",
    storage: str | None = None,
    backend: str = "thread",
    chunk_size: int = DEFAULT_CHUNK,
    routing: str = "fused",
    pipeline: str = "sync",
    wire: str = "raw",
    model: str = "exact",
    skg=None,
    runner=spmd_run,
    telemetry=None,
) -> tuple[EdgeList, list[RankOutput]]:
    """Generate ``C = A (x) B`` across ``nranks`` ranks and reassemble.

    Parameters
    ----------
    el_a, el_b:
        Factor edge lists.
    nranks:
        World size.
    scheme:
        ``"1d"`` (paper Section III) or ``"2d"`` (Remark 1).
    storage:
        ``None`` (keep where generated), ``"source_block"``, or
        ``"edge_hash"``.
    backend:
        Launcher backend (``"thread"``, ``"process"``, or ``"inline"`` for
        ``nranks == 1``).
    chunk_size:
        Max product edges materialized at once per rank.
    routing:
        ``"fused"`` (generate pre-bucketed, sort-free -- the default) or
        ``"legacy"`` (expand, argsort-bucket, exchange) for A/B comparison.
    pipeline:
        ``"sync"`` (each round's exchange completes before the next chunk
        is generated -- the default) or ``"async"`` (double-buffered: the
        exchange of chunk ``k`` is in flight while chunk ``k+1`` is
        generated).  ``"async"`` requires ``scheme="1d-pipelined"`` -- the
        batch schemes have a single exchange with nothing to overlap.
    wire:
        ``"raw"`` (int64 blocks as-is) or ``"varint"`` (delta-sorted
        varint compression of every exchanged block -- see
        :mod:`repro.distributed.wire`).
    model / skg:
        ``model="exact"`` (default) emits every product edge.
        ``model="skg"`` requires ``skg`` (an
        :class:`repro.skg.model.SKGSpec` whose vertex count matches the
        product's) and filters candidates with the deterministic
        hash-thresholded acceptance described in the module docstring.
        The two parameters must be consistent -- passing a spec with
        ``model="exact"`` (or vice versa) raises
        :class:`~repro.errors.PartitionError`.
    runner:
        The launch function, ``spmd_run``-compatible.  The supervised
        launcher (:func:`repro.distributed.supervisor.spmd_run_supervised`)
        is passed here -- pre-bound with its retry/fault/checkpoint
        configuration -- to add recovery without the generator knowing.
    telemetry:
        Optional :class:`~repro.telemetry.session.TelemetrySession`,
        forwarded to the runner.  ``None`` forwards nothing, so
        ``spmd_run``-compatible runners without a ``telemetry`` parameter
        keep working.

    Returns
    -------
    (EdgeList, list[RankOutput])
        The reassembled product (row order may differ from the serial
        product; contents are identical as multisets) and per-rank outputs.
    """
    _check_routing(routing)
    _check_pipeline(pipeline)
    _check_wire(wire)
    _check_model(model, skg, el_a.n * el_b.n)
    if pipeline == "async" and scheme != "1d-pipelined":
        raise PartitionError(
            f"pipeline='async' requires scheme='1d-pipelined' (scheme "
            f"{scheme!r} performs a single batch exchange with nothing to "
            f"overlap)"
        )
    n_c = el_a.n * el_b.n
    run_kwargs = {"backend": backend}
    if telemetry is not None:
        run_kwargs["telemetry"] = telemetry
    if scheme == "1d-pipelined":
        if storage is None:
            storage = "source_block"
        parts_a = partition_edges_1d(el_a, nranks)
        outputs = runner(
            generate_rank_1d_pipelined,
            nranks,
            parts_a,
            el_b,
            n_c,
            storage,
            chunk_size,
            routing,
            pipeline,
            wire,
            skg,
            **run_kwargs,
        )
    elif scheme == "1d":
        parts_a = partition_edges_1d(el_a, nranks)
        outputs = runner(
            generate_rank_1d,
            nranks,
            parts_a,
            el_b,
            n_c,
            storage,
            chunk_size,
            routing,
            wire,
            skg,
            **run_kwargs,
        )
    elif scheme == "2d":
        assignments = partition_edges_2d(el_a, el_b, nranks)
        outputs = runner(
            generate_rank_2d,
            nranks,
            assignments,
            n_c,
            storage,
            chunk_size,
            routing,
            wire,
            skg,
            **run_kwargs,
        )
    else:
        raise PartitionError(
            f"unknown scheme {scheme!r}; use '1d', '1d-pipelined', or '2d'"
        )
    blocks = [o.edges for o in outputs if o is not None and len(o.edges)]
    edges = (
        np.vstack(blocks) if blocks else np.empty((0, 2), dtype=np.int64)
    )
    return EdgeList(edges, n_c), outputs


def _legacy_chunk_count(ma: int, mb: int, chunk_size: int) -> int:
    """Chunks :func:`iter_kron_product` emits for an ``ma x mb`` product."""
    if ma == 0 or mb == 0:
        return 0
    if chunk_size >= mb:
        a_per_chunk = max(1, chunk_size // mb)
        return -(-ma // a_per_chunk)
    return ma * (-(-mb // chunk_size))


def generate_rank_1d_pipelined(
    comm: Communicator,
    parts_a: list[EdgeList],
    el_b: EdgeList,
    n_c: int,
    storage: str,
    chunk_size: int = DEFAULT_CHUNK,
    routing: str = "fused",
    pipeline: str = "sync",
    wire: str = "raw",
    skg=None,
) -> RankOutput:
    """1-D rank program with per-chunk routing (pipelined sends).

    The batch variant (:func:`generate_rank_1d`) generates everything and
    exchanges once, peaking at the rank's full generated volume.  The
    HavoqGT implementation instead sends edges *as they are produced*;
    this variant reproduces that shape: each generated chunk is routed to
    its storage owners immediately, so resident memory is bounded by
    roughly one chunk plus the rank's stored share.

    On the fused ``source_block`` path each chunk leaves the generation
    kernel already split by owner (one routed-kernel call per exchange
    round); other combinations expand then bucket per chunk, sort-free
    under ``"fused"`` and via stable argsort under ``"legacy"``.

    All ranks must agree on the number of exchange rounds; the round count
    is fixed up front by an allreduce over per-rank chunk counts, with
    ranks that exhaust their chunks early participating with empty blocks.

    ``pipeline="async"`` turns the loop into a double-buffered
    producer/consumer: round ``k``'s exchange is issued split-phase
    (:func:`exchange_edges_start`) and completed only *after* round
    ``k+1``'s chunk has been generated and bucketed, so generation
    overlaps the in-flight exchange -- the paper's overlap of generation
    with asynchronous edge sends.  At most one exchange is in flight and
    at most two chunks are resident (the in-flight buckets plus the chunk
    being generated), preserving the bounded-memory guarantee.  The
    stored output is bit-identical to ``pipeline="sync"`` with the same
    ``wire``: the same per-round blocks arrive in the same order.
    ``wire="varint"`` additionally compresses every exchanged bucket
    (:mod:`repro.distributed.wire`).  Time spent generating while an
    exchange was in flight accumulates into the ``exchange.overlap_s``
    counter.
    """
    _check_routing(routing)
    _check_pipeline(pipeline)
    _check_wire(wire)
    tel = telemetry_of(comm)
    acceptor = _make_acceptor(skg)
    part = parts_a[comm.rank]
    mb = el_b.m_directed
    fused_routed = routing == "fused" and storage == "source_block"
    # The chunk count must match the generator's emission exactly.  The
    # routed iterator never splits one A-edge's expansion (routing needs
    # whole-B runs); the legacy iterator sub-chunks it when mb > chunk_size.
    if fused_routed:
        my_rounds = routed_chunk_count(part.m_directed, mb, chunk_size)
        chunks = iter_kron_product_routed(part, el_b, comm.size, n_c, chunk_size)
    else:
        my_rounds = _legacy_chunk_count(part.m_directed, mb, chunk_size)
        chunks = iter_kron_product(part, el_b, chunk_size)
    all_rounds = comm.allreduce(my_rounds, max)

    empty_buckets = [_EMPTY] * comm.size
    method = "scatter" if routing == "fused" else "argsort"
    stored: list[np.ndarray] = []
    generated = 0

    def next_outgoing(_round: int) -> list[np.ndarray]:
        """Generate and bucket one round's chunk (the producer step)."""
        nonlocal generated
        with tel.span("generate", cat="phase", round=_round):
            block = next(chunks, None)
            if block is not None and acceptor is not None:
                if fused_routed:
                    block = [acceptor.filter_edges(b) for b in block]
                else:
                    block = acceptor.filter_edges(block)
        if fused_routed:
            outgoing = empty_buckets if block is None else block
            generated += sum(len(b) for b in outgoing)
            return outgoing
        if block is None:
            block = _EMPTY
        generated += len(block)
        with tel.span("route", cat="phase", method=method):
            return bucket_edges(
                block, comm.size, scheme=storage, n=n_c, method=method
            )

    if comm.size == 1:
        for _round in range(all_rounds):
            received = next_outgoing(_round)[0]
            if len(received):
                stored.append(np.asarray(received))
    elif pipeline == "sync":
        for _round in range(all_rounds):
            outgoing = next_outgoing(_round)
            received = exchange_edges(comm, outgoing, wire=wire)
            if len(received):
                stored.append(received)
    else:
        # Double-buffered: finish round k's exchange only after round
        # k+1's chunk exists.  One request in flight keeps the per-channel
        # FIFO contract trivially satisfied; the in-flight buckets are
        # owned by the runtime until finished (Request contract), which
        # holds here because next_outgoing builds fresh arrays each round.
        pending = None
        issued_at = 0.0
        overlap_s = 0.0
        for _round in range(all_rounds):
            outgoing = next_outgoing(_round)
            if pending is not None:
                # Everything since the issue was generation that hid the
                # in-flight exchange.
                overlap_s += tel.clock() - issued_at
                received = exchange_edges_finish(comm, pending)
                if len(received):
                    stored.append(received)
            pending = exchange_edges_start(comm, outgoing, wire=wire)
            issued_at = tel.clock()
        if pending is not None:
            # Tail flush: no generation left to hide this wait, so it
            # does not count toward the overlap.
            received = exchange_edges_finish(comm, pending)
            if len(received):
                stored.append(received)
        tel.add("exchange.overlap_s", overlap_s)
    # a rank may still hold residual chunks if per-rank chunk counts were
    # underestimated (cannot happen with the shared formula, but guard):
    for _block in chunks:  # pragma: no cover - defensive
        raise PartitionError("pipelined round count underestimated")
    edges = np.vstack(stored) if stored else _EMPTY
    _emit_skg_counters(tel, acceptor)
    tel.add("edges.generated", generated)
    tel.add("edges.stored", len(edges))
    return RankOutput(comm.rank, edges, generated)

"""Distributed nonstochastic Kronecker generation (Section III).

Rank programs implementing the paper's generator under both partitioning
schemes.  Each rank:

1. takes its slice of the factor edge space (1-D: a shard of A with B
   replicated; 2-D: an (A-part, B-part) grid cell per Remark 1);
2. streams its product edges in bounded chunks
   (:func:`repro.kronecker.product.iter_kron_product`), mirroring the
   asynchronous chunked sends of the HavoqGT implementation;
3. optionally shuffles each chunk to storage owners
   (:mod:`repro.distributed.shuffle`), so generation and storage placement
   stay decoupled.

The rank functions are plain module-level callables taking their
:class:`Communicator` first, runnable under any backend via
:func:`repro.distributed.launcher.spmd_run`.  Convenience drivers
(:func:`generate_distributed`) wire partitioning + launch + reassembly and
are what the examples, tests, and benches call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.comm import Communicator
from repro.distributed.launcher import spmd_run
from repro.distributed.partition import partition_edges_1d, partition_edges_2d
from repro.distributed.shuffle import shuffle_to_owners
from repro.errors import PartitionError
from repro.graph.edgelist import EdgeList
from repro.kronecker.product import DEFAULT_CHUNK, iter_kron_product

__all__ = [
    "RankOutput",
    "generate_rank_1d",
    "generate_rank_1d_pipelined",
    "generate_rank_2d",
    "generate_distributed",
]


@dataclass(frozen=True)
class RankOutput:
    """What one rank produced.

    Attributes
    ----------
    rank:
        Producer rank.
    edges:
        The product edges this rank ends up *storing* (post-shuffle when a
        storage scheme is active, otherwise its generated edges).
    generated:
        How many edges this rank generated (pre-shuffle), for load stats.
    """

    rank: int
    edges: np.ndarray
    generated: int


def _generate_cells(
    cells: list[tuple[EdgeList, EdgeList]], chunk_size: int
) -> tuple[np.ndarray, int]:
    """Stream and concatenate the product edges of this rank's cells."""
    chunks: list[np.ndarray] = []
    for part_a, part_b in cells:
        chunks.extend(iter_kron_product(part_a, part_b, chunk_size))
    if not chunks:
        return np.empty((0, 2), dtype=np.int64), 0
    edges = np.vstack(chunks)
    return edges, len(edges)


def generate_rank_1d(
    comm: Communicator,
    parts_a: list[EdgeList],
    el_b: EdgeList,
    n_c: int,
    storage: str | None,
    chunk_size: int = DEFAULT_CHUNK,
) -> RankOutput:
    """Rank program for the 1-D scheme: ``C_r = A_r (x) B``.

    ``parts_a`` is the full shard list (replicated, tiny) and each rank
    picks ``parts_a[comm.rank]`` -- matching the paper's file-per-rank read
    without I/O in the hot path.  ``storage=None`` keeps generated edges
    local; ``"source_block"``/``"edge_hash"`` shuffle them to owners.
    """
    part = parts_a[comm.rank]
    edges, generated = _generate_cells([(part, el_b)], chunk_size)
    if storage is not None and comm.size > 1:
        edges = shuffle_to_owners(comm, edges, scheme=storage, n=n_c)
    return RankOutput(comm.rank, edges, generated)


def generate_rank_2d(
    comm: Communicator,
    assignments: list[list[tuple[EdgeList, EdgeList]]],
    n_c: int,
    storage: str | None,
    chunk_size: int = DEFAULT_CHUNK,
) -> RankOutput:
    """Rank program for Remark 1's 2-D scheme: ``A_{r % Rh} (x) B_{r // Rh}``."""
    edges, generated = _generate_cells(assignments[comm.rank], chunk_size)
    if storage is not None and comm.size > 1:
        edges = shuffle_to_owners(comm, edges, scheme=storage, n=n_c)
    return RankOutput(comm.rank, edges, generated)


def generate_distributed(
    el_a: EdgeList,
    el_b: EdgeList,
    nranks: int,
    *,
    scheme: str = "1d",
    storage: str | None = None,
    backend: str = "thread",
    chunk_size: int = DEFAULT_CHUNK,
) -> tuple[EdgeList, list[RankOutput]]:
    """Generate ``C = A (x) B`` across ``nranks`` ranks and reassemble.

    Parameters
    ----------
    el_a, el_b:
        Factor edge lists.
    nranks:
        World size.
    scheme:
        ``"1d"`` (paper Section III) or ``"2d"`` (Remark 1).
    storage:
        ``None`` (keep where generated), ``"source_block"``, or
        ``"edge_hash"``.
    backend:
        Launcher backend (``"thread"``, ``"process"``, or ``"inline"`` for
        ``nranks == 1``).
    chunk_size:
        Max product edges materialized at once per rank.

    Returns
    -------
    (EdgeList, list[RankOutput])
        The reassembled product (row order may differ from the serial
        product; contents are identical as multisets) and per-rank outputs.
    """
    n_c = el_a.n * el_b.n
    if scheme == "1d-pipelined":
        if storage is None:
            storage = "source_block"
        parts_a = partition_edges_1d(el_a, nranks)
        outputs = spmd_run(
            generate_rank_1d_pipelined,
            nranks,
            parts_a,
            el_b,
            n_c,
            storage,
            chunk_size,
            backend=backend,
        )
    elif scheme == "1d":
        parts_a = partition_edges_1d(el_a, nranks)
        outputs = spmd_run(
            generate_rank_1d,
            nranks,
            parts_a,
            el_b,
            n_c,
            storage,
            chunk_size,
            backend=backend,
        )
    elif scheme == "2d":
        assignments = partition_edges_2d(el_a, el_b, nranks)
        outputs = spmd_run(
            generate_rank_2d,
            nranks,
            assignments,
            n_c,
            storage,
            chunk_size,
            backend=backend,
        )
    else:
        raise PartitionError(
            f"unknown scheme {scheme!r}; use '1d', '1d-pipelined', or '2d'"
        )
    blocks = [o.edges for o in outputs if len(o.edges)]
    edges = (
        np.vstack(blocks) if blocks else np.empty((0, 2), dtype=np.int64)
    )
    return EdgeList(edges, n_c), outputs


def generate_rank_1d_pipelined(
    comm: Communicator,
    parts_a: list[EdgeList],
    el_b: EdgeList,
    n_c: int,
    storage: str,
    chunk_size: int = DEFAULT_CHUNK,
) -> RankOutput:
    """1-D rank program with per-chunk shuffling (pipelined sends).

    The batch variant (:func:`generate_rank_1d`) generates everything and
    shuffles once, peaking at the rank's full generated volume.  The
    HavoqGT implementation instead sends edges *as they are produced*;
    this variant reproduces that shape: each generated chunk is routed to
    its storage owners immediately, so resident memory is bounded by
    ``chunk_size`` plus the rank's stored share.

    All ranks must agree on the number of exchange rounds; the round count
    is fixed up front by an allreduce over per-rank chunk counts, with
    ranks that exhaust their chunks early participating with empty blocks.
    """
    part = parts_a[comm.rank]
    mb = el_b.m_directed
    # Chunk count must match iter_kron_product's emission exactly: when
    # chunk_size >= |E_B| each outer group of a_per_chunk A-edges emits one
    # block; otherwise each single A-edge's expansion is split into
    # ceil(|E_B| / chunk_size) sub-blocks.
    if mb == 0 or part.m_directed == 0:
        my_rounds = 0
    elif chunk_size >= mb:
        a_per_chunk = max(1, chunk_size // mb)
        my_rounds = -(-part.m_directed // a_per_chunk)
    else:
        my_rounds = part.m_directed * (-(-mb // chunk_size))
    all_rounds = comm.allreduce(my_rounds, max)

    stored: list[np.ndarray] = []
    generated = 0
    chunks = iter_kron_product(part, el_b, chunk_size)
    empty = np.empty((0, 2), dtype=np.int64)
    for _round in range(all_rounds):
        block = next(chunks, None)
        if block is None:
            block = empty
        generated += len(block)
        if comm.size > 1:
            received = shuffle_to_owners(comm, block, scheme=storage, n=n_c)
        else:
            received = block
        if len(received):
            stored.append(received)
    # a rank may still hold residual chunks if per-rank chunk counts were
    # underestimated (cannot happen with the shared formula, but guard):
    for block in chunks:  # pragma: no cover - defensive
        raise PartitionError("pipelined round count underestimated")
    edges = np.vstack(stored) if stored else empty
    return RankOutput(comm.rank, edges, generated)

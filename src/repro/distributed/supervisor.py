"""Supervised SPMD execution: retry, checkpoint/resume, chaos harness.

:func:`spmd_run_supervised` is a drop-in replacement for
:func:`repro.distributed.launcher.spmd_run` that adds the recovery layer
the bare launcher deliberately lacks:

* **whole-run retry with exponential backoff** on communicator failures
  (timeouts, rank crashes, dead child processes, collective divergence) --
  rank-program bugs (``ValueError`` in user code, checkpoint digest
  mismatches) are *not* retried, they re-raise immediately;
* **deterministic fault injection** via a
  :class:`~repro.distributed.faults.FaultPlan` -- each attempt re-binds the
  plan to its attempt number, so probabilistic faults reroll and scheduled
  faults disarm once ``fault_attempts`` is exhausted;
* **shard-level checkpoint/resume** through the content-addressed
  :class:`~repro.distributed.checkpoint.CheckpointStore`: completed shard
  outputs persist, a retry re-executes only missing shards, and a shard
  that *is* re-executed (because peers need its collective traffic) is
  verified bit-for-bit against the recorded digest.

:func:`generate_distributed_supervised` wires all of it to the generator,
and :func:`run_chaos_matrix` drives a seeded fault matrix end-to-end,
asserting every plan recovers to output bit-identical (canonical edge
order) to the fault-free run -- the ``repro-kron chaos`` subcommand.
"""

from __future__ import annotations

import functools
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.distributed.checkpoint import (
    CheckpointStore,
    RunManifest,
    edges_digest,
    reshard_run,
)
from repro.distributed.comm import RECV_TIMEOUT_ENV
from repro.distributed.faults import FaultPlan, default_fault_matrix
from repro.distributed.generator import RankOutput, generate_distributed
from repro.distributed.launcher import spmd_run
from repro.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    CommunicatorError,
    RankFailedError,
    ReproError,
)
from repro.graph.edgelist import EdgeList
from repro.kronecker.product import DEFAULT_CHUNK
from repro.telemetry.clock import monotonic
from repro.telemetry.session import TelemetrySession, telemetry_of

__all__ = [
    "SupervisorReport",
    "spmd_run_supervised",
    "decorrelated_jitter",
    "generation_run_key",
    "generation_family_key",
    "generate_distributed_supervised",
    "ChaosOutcome",
    "ChaosReport",
    "run_chaos_matrix",
]

#: Exception type *names* considered transient when a child process ships
#: its failure back as a string (the type object does not survive the hop).
_RETRYABLE_TYPE_NAMES = frozenset(
    {
        "CommunicatorError",
        "CollectiveOrderError",
        "RankCrashError",
        "RankDiedError",
        "TimeoutError",
        "BrokenBarrierError",
        "Empty",
        "EOFError",
        "BrokenPipeError",
        "ConnectionResetError",
        # Corruption *at rest*: the loader deleted the damaged artifact, so
        # a retry regenerates the shard (unlike its parent CheckpointError,
        # which signals nondeterminism and stays fatal).
        "CheckpointCorruptionError",
    }
)


def _is_retryable(exc: BaseException) -> bool:
    """Transient infrastructure failure vs. deterministic program bug."""
    if isinstance(exc, RankFailedError):
        cause = exc.__cause__
        if cause is not None:
            return isinstance(
                cause, (CommunicatorError, CheckpointCorruptionError)
            )
        return exc.original_type in _RETRYABLE_TYPE_NAMES
    return isinstance(exc, (CommunicatorError, CheckpointCorruptionError))


@dataclass
class SupervisorReport:
    """What a supervised run did (filled in place by the supervisor)."""

    attempts: int = 0
    failures: list[str] = field(default_factory=list)

    def record_failure(self, attempt: int, exc: BaseException) -> None:
        first_line = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
        self.failures.append(f"attempt {attempt}: {first_line}")


class _CheckpointedRankFn:
    """Wrap a ``RankOutput``-returning rank program with shard checkpoints.

    ``shard_mode="independent"`` (comm-free rank programs): each rank
    skips straight to its persisted shard when one verifies, so a retry
    re-executes only the failed shards.

    ``shard_mode="collective"`` (rank programs that exchange edges): ranks
    agree via one allreduce whether *every* shard is already persisted --
    if so, all load and no generation happens; otherwise all ranks re-run
    so the exchange stays symmetric, and any rank holding a checkpoint
    verifies its re-executed output digest against the recorded one
    (deterministic generation makes a mismatch a hard
    :class:`CheckpointError`, never a retry).

    Module-level class (not a closure) so the process backend can ship it
    to forked children; it reopens the store per call because file handles
    do not survive the fork.
    """

    def __init__(
        self, fn, directory: str | os.PathLike, run_key: str, shard_mode: str
    ) -> None:
        if shard_mode not in ("independent", "collective"):
            raise CheckpointError(
                f"unknown shard_mode {shard_mode!r}; "
                f"use 'independent' or 'collective'"
            )
        self.fn = fn
        self.directory = str(directory)
        self.run_key = run_key
        self.shard_mode = shard_mode

    def _key(self, rank: int) -> str:
        return f"{self.run_key}.rank{rank:05d}"

    def __call__(self, comm, *args):
        tel = telemetry_of(comm)
        with tel.span("checkpoint", cat="phase", op="load"):
            store = CheckpointStore(self.directory)
            key = self._key(comm.rank)
            # discard=True: a truncated/corrupted shard is deleted and
            # raises the *transient* CheckpointCorruptionError, so the
            # supervised retry regenerates it instead of silently running
            # from a half-trusted store.
            cached = store.get(key, discard=True)
        if self.shard_mode == "collective" and comm.size > 1:
            all_cached = comm.allreduce(
                cached is not None, lambda a, b: a and b
            )
            if all_cached:
                tel.add("checkpoint.hits")
                tel.add("edges.restored", len(cached.edges))
                tel.add("edges.stored", len(cached.edges))
                return RankOutput(comm.rank, cached.edges, cached.generated)
            tel.add("checkpoint.misses")
            out = self.fn(comm, *args)
            if cached is not None:
                with tel.span("checkpoint", cat="phase", op="verify"):
                    fresh = edges_digest(out.edges)
                if fresh != cached.digest:
                    if cached.resharded:
                        # Elastic shards hold the right edges in canonical
                        # union order, not generation order; once the world
                        # re-generated anyway, the fresh layout is the
                        # ground truth -- replace, don't diagnose.
                        with tel.span("checkpoint", cat="phase", op="store"):
                            store.put(key, out.edges,
                                      generated=out.generated)
                    else:
                        raise CheckpointError(
                            f"rank {comm.rank}: re-executed shard digest "
                            f"{fresh:#018x} does not match checkpoint "
                            f"{cached.digest:#018x} for key {key!r} -- "
                            f"generation is expected to be deterministic"
                        )
            else:
                with tel.span("checkpoint", cat="phase", op="store"):
                    store.put(key, out.edges, generated=out.generated)
            return out
        if cached is not None:
            tel.add("checkpoint.hits")
            tel.add("edges.restored", len(cached.edges))
            tel.add("edges.stored", len(cached.edges))
            return RankOutput(comm.rank, cached.edges, cached.generated)
        tel.add("checkpoint.misses")
        out = self.fn(comm, *args)
        with tel.span("checkpoint", cat="phase", op="store"):
            store.put(key, out.edges, generated=out.generated)
        return out


def decorrelated_jitter(
    prev: float,
    base: float,
    factor: float,
    cap: float,
    rng: random.Random,
) -> float:
    """Next backoff delay under decorrelated jitter.

    The AWS-style scheme: uniform in ``[base, prev * factor]``, clamped to
    ``cap``.  Retaining the exponential *envelope* (never above
    ``min(cap, prev * factor)``) while randomizing within it keeps
    simultaneously-failing ranks/hosts from re-dialing in lockstep --
    synchronized retry storms are exactly what took down the network the
    first time.  Deterministic given ``rng``; with ``base == prev == 0``
    the sequence stays 0 (tests that disable backoff keep sleeping 0s).
    """
    return min(cap, rng.uniform(base, max(base, prev * factor)))


def spmd_run_supervised(
    fn,
    nranks: int,
    *args,
    backend: str = "thread",
    checked: bool | None = None,
    fault_plan: FaultPlan | None = None,
    max_attempts: int = 3,
    backoff_base: float = 0.05,
    backoff_factor: float = 2.0,
    backoff_max: float = 2.0,
    backoff_seed: int | None = None,
    checkpoint: str | os.PathLike | CheckpointStore | None = None,
    run_key: str | None = None,
    shard_mode: str = "collective",
    report: SupervisorReport | None = None,
    telemetry=None,
    rendezvous: str | None = None,
    pre_attempt=None,
) -> list:
    """Run ``fn`` across ``nranks`` ranks under supervision.

    Drop-in for :func:`spmd_run` (same positional contract, returns
    per-rank results in rank order), plus:

    fault_plan:
        Inject this :class:`FaultPlan` (re-bound to each attempt number)
        beneath the collective-order sentinel.
    max_attempts:
        Total attempts before the last failure re-raises.  Only failures
        classified as transient communicator faults are retried.
    backoff_base / backoff_factor / backoff_max:
        Backoff envelope (seconds) slept between attempts.  The first
        retry sleeps exactly ``backoff_base``; later retries draw
        decorrelated jitter within the exponential envelope
        (:func:`decorrelated_jitter`) so simultaneous multi-rank failures
        do not retry in lockstep.
    backoff_seed:
        Seed for the jitter RNG (``None`` = nondeterministic).  Chaos and
        unit tests pin it for reproducible retry timing.
    checkpoint / run_key / shard_mode:
        When ``checkpoint`` names a directory (or store), wrap ``fn`` --
        which must return :class:`RankOutput` -- in shard-level
        checkpoint/resume (see :class:`_CheckpointedRankFn`).
    report:
        Optional :class:`SupervisorReport` filled with attempt counts and
        per-attempt failure summaries.
    telemetry:
        Optional :class:`~repro.telemetry.session.TelemetrySession`,
        forwarded to every :func:`spmd_run` attempt.  Retries additionally
        land on the session's supervisor lane as instant events (attempt
        number, error, backoff), so a recovered run's trace shows *why* it
        took the time it took.
    rendezvous:
        Socket backend only; forwarded to every :func:`spmd_run` attempt
        (``"host:port"`` of an external ``repro-kron serve-rendezvous``).
    pre_attempt:
        Optional ``pre_attempt(attempt)`` callable run *inside* each
        attempt's try block, before the launch -- the elastic-resume hook:
        a transient failure it raises (e.g.
        :class:`CheckpointCorruptionError` from resharding damaged
        checkpoints) is retried like any launch failure.
    """
    if max_attempts < 1:
        raise CommunicatorError(f"max_attempts must be >= 1, got {max_attempts}")
    run_fn = fn
    if checkpoint is not None:
        directory = (
            checkpoint.directory
            if isinstance(checkpoint, CheckpointStore)
            else checkpoint
        )
        key = run_key or getattr(fn, "__name__", "spmd-run")
        run_fn = _CheckpointedRankFn(fn, directory, key, shard_mode)
    rng = random.Random(backoff_seed)
    delay = backoff_base
    for attempt in range(max_attempts):
        wrap = fault_plan.binder(attempt) if fault_plan is not None else None
        try:
            if pre_attempt is not None:
                pre_attempt(attempt)
            results = spmd_run(
                run_fn,
                nranks,
                *args,
                backend=backend,
                checked=checked,
                wrap_comm=wrap,
                telemetry=telemetry,
                rendezvous=rendezvous,
            )
        except ReproError as exc:
            if report is not None:
                report.attempts = attempt + 1
                report.record_failure(attempt, exc)
            retrying = _is_retryable(exc) and attempt + 1 < max_attempts
            if telemetry is not None and telemetry.enabled:
                telemetry.record(
                    "supervisor.retry" if retrying else "supervisor.giveup",
                    attempt=attempt + 1,
                    error=type(exc).__name__,
                    backoff_s=min(delay, backoff_max) if retrying else 0.0,
                )
            if not retrying:
                raise
            time.sleep(min(delay, backoff_max))
            delay = decorrelated_jitter(
                delay, backoff_base, backoff_factor, backoff_max, rng
            )
            continue
        if report is not None:
            report.attempts = attempt + 1
        if telemetry is not None and telemetry.enabled and attempt:
            telemetry.record("supervisor.recovered", attempts=attempt + 1)
        return results
    raise AssertionError("unreachable")  # pragma: no cover


def generation_run_key(
    el_a: EdgeList,
    el_b: EdgeList,
    nranks: int,
    scheme: str,
    storage: str | None,
    routing: str,
    chunk_size: int,
    *,
    pipeline: str = "sync",
    wire: str = "raw",
    model: str = "exact",
    skg=None,
) -> str:
    """Content-addressed signature of one generation configuration.

    Folds the factor edge digests and every parameter that affects shard
    contents or row order, so a resumed run can never consume checkpoints
    written under a different configuration.  ``wire`` matters because the
    varint codec re-sorts each exchanged block (shard row order changes);
    ``pipeline`` is included for symmetry even though sync and async are
    bit-identical -- run keys identify configurations, not equivalence
    classes.  ``model="skg"`` appends the spec digest
    (:meth:`repro.skg.model.SKGSpec.digest`, covering the seed matrix,
    ``skg_seed``, and noise parameters), so stochastic runs with
    different specs can never share checkpoints; exact keys are
    unchanged.
    """
    return (
        f"gen-{edges_digest(el_a.edges):016x}-{edges_digest(el_b.edges):016x}"
        f"-r{nranks}-{scheme}-{storage}-{routing}-c{chunk_size}"
        f"-{pipeline}-{wire}{_model_token(model, skg)}"
    )


def _model_token(model: str, skg) -> str:
    """Run-key suffix identifying the generation model (empty for exact)."""
    if model == "exact" and skg is None:
        return ""
    if skg is None:
        raise CheckpointError(
            f"model {model!r} requires an SKG spec for run-key derivation"
        )
    return f"-skg{skg.digest():016x}"


def generation_family_key(
    el_a: EdgeList,
    el_b: EdgeList,
    scheme: str,
    storage: str | None,
    routing: str,
    chunk_size: int,
    *,
    pipeline: str = "sync",
    wire: str = "raw",
    model: str = "exact",
    skg=None,
) -> str:
    """The rank-count-independent part of :func:`generation_run_key`.

    Two run keys with the same family describe the same edge set sharded
    at different world sizes -- the elastic-resume compatibility class.
    Everything that changes *contents* stays in -- including the SKG spec
    digest, since a stochastic run's edge set is a function of the spec;
    only ``r{nranks}`` (which changes *placement*) is wildcarded.
    """
    return (
        f"gen-{edges_digest(el_a.edges):016x}-{edges_digest(el_b.edges):016x}"
        f"-r*-{scheme}-{storage}-{routing}-c{chunk_size}"
        f"-{pipeline}-{wire}{_model_token(model, skg)}"
    )


def _maybe_elastic_reshard(
    directory: str | os.PathLike,
    run_key: str,
    family: str,
    nranks: int,
    scheme: str,
    n: int,
) -> bool:
    """Reshard a same-family manifest onto ``nranks`` if one exists.

    The supervisor's per-attempt hook: when the target run key has no
    complete shard set but a manifest of the same family (checkpointed at
    a different rank count) does, re-partition it through
    :func:`reshard_run`.  Returns whether a reshard happened; raises the
    transient :class:`CheckpointCorruptionError` when the source artifacts
    turn out damaged (the retry then generates from scratch).
    """
    store = CheckpointStore(directory)
    if all(store.has(f"{run_key}.rank{r:05d}") for r in range(nranks)):
        return False
    for manifest in store.manifests():
        if manifest.family != family or manifest.nranks == nranks:
            continue
        reshard_run(
            store, manifest, new_key=run_key, new_ranks=nranks,
            scheme=scheme, n=n,
        )
        return True
    return False


def generate_distributed_supervised(
    el_a: EdgeList,
    el_b: EdgeList,
    nranks: int,
    *,
    scheme: str = "1d",
    storage: str | None = None,
    backend: str = "thread",
    chunk_size: int = DEFAULT_CHUNK,
    routing: str = "fused",
    pipeline: str = "sync",
    wire: str = "raw",
    model: str = "exact",
    skg=None,
    fault_plan: FaultPlan | None = None,
    max_attempts: int = 3,
    checkpoint_dir: str | os.PathLike | None = None,
    run_key: str | None = None,
    report: SupervisorReport | None = None,
    telemetry=None,
    rendezvous: str | None = None,
    backoff_seed: int | None = None,
) -> tuple[EdgeList, list[RankOutput]]:
    """:func:`generate_distributed` under the supervised launcher.

    Same contract and parameters as the unsupervised driver, plus the
    supervision knobs of :func:`spmd_run_supervised`.  With a
    ``checkpoint_dir``, completed shards persist under a run key derived
    from the factor digests and generation parameters; a retry (or a fresh
    call with the same configuration) re-executes only missing shards.

    **Elastic re-sharded resume**: after a storage-routed run succeeds, a
    :class:`~repro.distributed.checkpoint.RunManifest` records the shard
    digests and the consensus union digest.  A later call with the same
    configuration but a *different* ``nranks`` finds the manifest through
    the rank-count-independent family key and re-partitions the shards
    through the target world's ownership map before the first attempt
    (:func:`reshard_run`) -- the resumed run loads every shard, generates
    nothing, and reassembles a bit-identical edge set whether the world
    shrank or grew.
    """
    if run_key is None and checkpoint_dir is not None:
        run_key = generation_run_key(
            el_a, el_b, nranks, scheme, storage, routing, chunk_size,
            pipeline=pipeline, wire=wire, model=model, skg=skg,
        )
    # Rank programs without a storage exchange never touch the
    # communicator, so their shards resume independently; routed programs
    # must keep the exchange symmetric across ranks.
    shard_mode = (
        "independent"
        if storage is None and scheme in ("1d", "2d")
        else "collective"
    )
    # Elastic resume needs an ownership map, which only storage-routed
    # shards have (storage=None shards live where the *partition* put
    # them, a function of the old rank count).  1d-pipelined defaults its
    # storage to source_block inside the generator; mirror that here.
    effective_storage = storage
    if scheme == "1d-pipelined" and storage is None:
        effective_storage = "source_block"
    family = None
    pre_attempt = None
    if checkpoint_dir is not None and effective_storage is not None:
        family = generation_family_key(
            el_a, el_b, scheme, storage, routing, chunk_size,
            pipeline=pipeline, wire=wire, model=model, skg=skg,
        )
        n_c = el_a.n * el_b.n
        pre_attempt = functools.partial(
            _elastic_pre_attempt, checkpoint_dir, run_key, family, nranks,
            effective_storage, n_c, telemetry,
        )
    runner = functools.partial(
        spmd_run_supervised,
        fault_plan=fault_plan,
        max_attempts=max_attempts,
        checkpoint=checkpoint_dir,
        run_key=run_key,
        shard_mode=shard_mode,
        report=report,
        rendezvous=rendezvous,
        backoff_seed=backoff_seed,
        pre_attempt=pre_attempt,
    )
    el, outputs = generate_distributed(
        el_a,
        el_b,
        nranks,
        scheme=scheme,
        storage=storage,
        backend=backend,
        chunk_size=chunk_size,
        routing=routing,
        pipeline=pipeline,
        wire=wire,
        model=model,
        skg=skg,
        runner=runner,
        telemetry=telemetry,
    )
    if family is not None:
        # Success: record the consensus manifest elastic resume feeds on.
        store = CheckpointStore(checkpoint_dir)
        union = canonical_edges(el.edges)
        store.put_manifest(
            RunManifest(
                run_key=run_key,
                family=family,
                nranks=nranks,
                shard_digests=tuple(
                    edges_digest(o.edges) for o in outputs
                ),
                union_digest=edges_digest(union),
                edges_total=int(len(union)),
            )
        )
    return el, outputs


def _elastic_pre_attempt(
    directory, run_key, family, nranks, scheme, n, telemetry, attempt
):
    """Per-attempt elastic hook (module-level for picklability/clarity)."""
    resharded = _maybe_elastic_reshard(
        directory, run_key, family, nranks, scheme, n
    )
    if resharded and telemetry is not None and telemetry.enabled:
        telemetry.record(
            "supervisor.elastic_reshard", attempt=attempt, nranks=nranks
        )


# --------------------------------------------------------------------- #
# chaos harness
# --------------------------------------------------------------------- #
@contextmanager
def _recv_timeout_env(seconds: float | None):
    """Temporarily pin ``REPRO_RECV_TIMEOUT`` (None = leave untouched)."""
    if seconds is None:
        yield
        return
    old = os.environ.get(RECV_TIMEOUT_ENV)
    os.environ[RECV_TIMEOUT_ENV] = str(seconds)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(RECV_TIMEOUT_ENV, None)
        else:
            os.environ[RECV_TIMEOUT_ENV] = old


def canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Edges in canonical (lexicographic) row order for bit-comparison.

    Distributed reassembly order varies with world size and backend; the
    canonical sort makes "same multiset" checkable as array equality.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


@dataclass(frozen=True)
class ChaosOutcome:
    """One (plan, backend, routing) cell of the chaos matrix."""

    plan: str
    backend: str
    routing: str
    recovered: bool
    identical: bool
    attempts: int
    error: str = ""
    #: Wall time of the whole cell -- including retries and backoff -- so
    #: a report shows recovery *cost*, not just recovery success.
    elapsed_s: float = 0.0
    #: Socket-backend recovery work observed in the cell: TCP reconnects
    #: completed and in-flight frames replayed after them.  Zero on
    #: thread/process cells, which have no connections to heal.
    reconnects: int = 0
    replays: int = 0

    @property
    def ok(self) -> bool:
        return self.recovered and self.identical


@dataclass
class ChaosReport:
    """Every cell of one chaos-matrix run."""

    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def all_recovered(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def to_text(self) -> str:
        lines = [
            f"{'plan':<16}{'backend':<9}{'routing':<9}"
            f"{'attempts':>9}{'elapsed':>9}  status"
        ]
        for o in self.outcomes:
            if o.ok:
                status = "recovered, bit-identical"
            elif o.recovered:
                status = "RAN BUT OUTPUT DIVERGED"
            else:
                status = f"FAILED: {o.error}"
            lines.append(
                f"{o.plan:<16}{o.backend:<9}{o.routing:<9}"
                f"{o.attempts:>9}{o.elapsed_s:>8.2f}s  {status}"
            )
        good = sum(o.ok for o in self.outcomes)
        lines.append(f"{good}/{len(self.outcomes)} cells recovered")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable report (``repro-kron chaos --json``)."""
        return {
            "cells": [
                {
                    "plan": o.plan,
                    "backend": o.backend,
                    "routing": o.routing,
                    "recovered": o.recovered,
                    "identical": o.identical,
                    "ok": o.ok,
                    "attempts": o.attempts,
                    "elapsed_s": o.elapsed_s,
                    "reconnects": o.reconnects,
                    "replays": o.replays,
                    "error": o.error,
                }
                for o in self.outcomes
            ],
            "cells_ok": sum(o.ok for o in self.outcomes),
            "cells_total": len(self.outcomes),
            "all_recovered": self.all_recovered,
        }


def _sock_repair_counts(tel) -> dict[str, int]:
    """Reconnect/replay counts harvested from a cell's telemetry session.

    Sums the per-rank ``sock.*`` counters the socket backend reports at
    finalize; a ``None`` session (non-socket cell) contributes zeros.
    """
    if tel is None:
        return {"reconnects": 0, "replays": 0}
    counters = tel.aggregated_metrics().get("counters", {})
    return {
        "reconnects": int(counters.get("sock.reconnects", 0)),
        "replays": int(counters.get("sock.replayed", 0)),
    }


def run_chaos_matrix(
    el_a: EdgeList,
    el_b: EdgeList,
    nranks: int = 4,
    *,
    plans: list[FaultPlan] | None = None,
    seed: int = 0,
    backends: tuple[str, ...] = ("thread", "process"),
    routings: tuple[str, ...] = ("fused", "legacy"),
    scheme: str = "1d",
    storage: str | None = "source_block",
    chunk_size: int = DEFAULT_CHUNK,
    pipeline: str = "sync",
    wire: str = "raw",
    model: str = "exact",
    skg=None,
    recv_timeout_s: float | None = 2.0,
    max_attempts: int = 4,
    checkpoint_root: str | os.PathLike | None = None,
    rendezvous: str | None = None,
) -> ChaosReport:
    """Drive every fault plan against supervised generation.

    For each plan x backend cell (routing rotates across cells so both
    hot paths face every fault kind), run
    :func:`generate_distributed_supervised` under the plan and compare the
    recovered product -- in canonical edge order -- bit-for-bit against
    the fault-free reference.  ``recv_timeout_s`` pins
    ``REPRO_RECV_TIMEOUT`` for the duration so dropped-message timeouts
    resolve in seconds, not minutes.  ``pipeline``/``wire`` select the
    async double-buffered loop and the varint wire format
    (``scheme="1d-pipelined"`` required for ``pipeline="async"``), so the
    matrix can prove fault recovery for the split-phase exchange too.

    A ``"socket"`` entry in ``backends`` runs those cells over the TCP
    backend with a per-cell telemetry session, and the outcome carries the
    reconnect/replay counts the connection-healing machinery reported --
    so the JSON report shows not just that a cell recovered but how much
    wire-level repair the recovery took.

    ``model="skg"`` (with an :class:`repro.skg.model.SKGSpec`) runs every
    cell through the stochastic acceptance filter: the fault-free
    references and all recovered cells then prove that seeded Bernoulli
    acceptance -- not just exact enumeration -- survives crashes, drops,
    and checkpointed retry bit-identically.
    """
    if plans is None:
        plans = default_fault_matrix(seed=seed, nranks=nranks)
    references: dict[str, np.ndarray] = {}
    for routing in routings:
        el, _ = generate_distributed(
            el_a, el_b, nranks, scheme=scheme, storage=storage,
            backend="thread", chunk_size=chunk_size, routing=routing,
            pipeline=pipeline, wire=wire, model=model, skg=skg,
        )
        references[routing] = canonical_edges(el.edges)
    report = ChaosReport()
    with _recv_timeout_env(recv_timeout_s):
        for i, plan in enumerate(plans):
            for j, backend in enumerate(backends):
                routing = routings[(i + j) % len(routings)]
                sup = SupervisorReport()
                checkpoint_dir = (
                    Path(checkpoint_root) / f"{i:02d}-{plan.label()}-{backend}"
                    if checkpoint_root is not None
                    else None
                )
                # Socket cells get their own telemetry session purely to
                # harvest sock.* counters; thread/process cells stay
                # un-instrumented so their comm-op indices (and therefore
                # the targeted fault schedules) are unchanged.
                tel = TelemetrySession() if backend == "socket" else None
                t0 = monotonic()
                try:
                    el, _ = generate_distributed_supervised(
                        el_a, el_b, nranks, scheme=scheme, storage=storage,
                        backend=backend, chunk_size=chunk_size,
                        routing=routing, pipeline=pipeline, wire=wire,
                        model=model, skg=skg,
                        fault_plan=plan, max_attempts=max_attempts,
                        checkpoint_dir=checkpoint_dir, report=sup,
                        telemetry=tel,
                        rendezvous=(
                            rendezvous if backend == "socket" else None
                        ),
                    )
                except ReproError as exc:
                    report.outcomes.append(
                        ChaosOutcome(
                            plan=plan.label(), backend=backend,
                            routing=routing, recovered=False,
                            identical=False, attempts=sup.attempts,
                            error=str(exc).splitlines()[0],
                            elapsed_s=monotonic() - t0,
                            **_sock_repair_counts(tel),
                        )
                    )
                    continue
                identical = np.array_equal(
                    canonical_edges(el.edges), references[routing]
                )
                report.outcomes.append(
                    ChaosOutcome(
                        plan=plan.label(), backend=backend, routing=routing,
                        recovered=True, identical=identical,
                        attempts=sup.attempts,
                        elapsed_s=monotonic() - t0,
                        **_sock_repair_counts(tel),
                    )
                )
    return report

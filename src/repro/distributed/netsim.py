"""Emulated-interconnect wrapper: charge wire time for every payload byte.

The in-memory backends move an edge block between ranks at memcpy (or
pointer-pass) speed, so the runtime never *feels* the communication cost
that dominates the paper's cluster runs -- a 16-byte edge is "free"
locally but costs real microseconds on a bisection-limited alltoall.
:class:`ThrottledCommunicator` restores that physics: every message is
stamped with its send time, and the receiver sleeps until the message
could actually have arrived under a :class:`NetworkModel`::

    ready = sent_at + latency + nbytes / bandwidth

The sleep is charged at *receive* time against the *send* timestamp, so
time a rank spends computing while a message is in flight counts toward
the transfer -- a nonblocking exchange that overlaps generation with the
wire genuinely hides the cost, exactly like hardware.  Per-source
messages are charged independently (parallel links); ``barrier`` is
control-plane and passes through unthrottled.

Only the p2p primitives are overridden.  Every collective -- including
the split-phase ``alltoall_start``/``alltoall_finish`` -- is inherited
from the :class:`~repro.distributed.comm.Communicator` base class and
therefore routes through the throttled ``send``/``recv`` automatically,
on any backend.  The benchmark harness (``benchmarks/trajectory.py``)
uses this to measure the async pipeline in the communication-bound
regime it was built for; tests use it to assert overlap semantics with
deterministic wire times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.distributed.comm import Communicator
from repro.telemetry.clock import monotonic
from repro.telemetry.instrument import payload_nbytes

__all__ = ["NetworkModel", "ThrottledCommunicator"]


@dataclass(frozen=True)
class NetworkModel:
    """Per-link wire model: fixed latency plus bytes over bandwidth."""

    #: Sustained per-link bandwidth in bytes per second.
    bandwidth: float
    #: Fixed per-message latency in seconds.
    latency: float = 0.0

    def wire_seconds(self, nbytes: int) -> float:
        """Transfer time of an ``nbytes`` payload over one link."""
        return self.latency + nbytes / self.bandwidth


class ThrottledCommunicator(Communicator):
    """Wrap ``inner`` so every message pays ``model``'s wire time.

    Messages are sent immediately (annotated with the send timestamp);
    the receive side sleeps out whatever portion of the wire time has
    not already elapsed.  Wrap it *under* the instrumented communicator
    (``spmd_run(..., wrap_comm=...)`` does this) so telemetry counters
    see the un-annotated payloads.
    """

    def __init__(self, inner: Communicator, model: NetworkModel) -> None:
        self._inner = inner
        self._model = model

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._inner.send((monotonic(), obj), dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        sent_at, obj = self._inner.recv(source, tag)
        remaining = (
            sent_at + self._model.wire_seconds(payload_nbytes(obj))
            - monotonic()
        )
        if remaining > 0:
            time.sleep(remaining)
        return obj

    def barrier(self) -> None:
        self._inner.barrier()

    def __getattr__(self, name: str) -> Any:
        # Backend extras (probe, close, ...) pass through; inherited
        # collectives are found on the class first and stay throttled.
        return getattr(self._inner, name)

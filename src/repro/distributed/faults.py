"""Deterministic fault injection for the SPMD runtime.

The paper's generator ran on up to 1.57M cores, where rank death and
message loss are routine; this module makes those failures *reproducible*
so the recovery machinery (:mod:`repro.distributed.supervisor`) can be
tested like any other code path.  A :class:`FaultPlan` is a frozen,
seed-driven schedule of faults; :class:`FaultyCommunicator` wraps any
backend's communicator and injects the plan's faults into the message
stream.  Every decision is a pure function of
``(seed, rank, attempt, op index)`` via the splitmix64 hashing of
:mod:`repro.util.hashing` -- never of wall clock or scheduler order -- so
a chaos run replays bit-for-bit.

Fault taxonomy
--------------
``delay``
    sleep before a communication op (scaled by a deterministic uniform).
    Tolerated in-run: the op still completes.
``duplicate``
    the same message is delivered twice.  Tolerated in-run: when duplicate
    injection is armed, every payload travels in a sequence-numbered
    envelope and the receiving side drops already-seen sequence numbers
    (the TCP move).  Enveloping bypasses the process backend's
    shared-memory fast path, so duplicate plans exercise the pickle path.
``drop``
    a send silently vanishes.  Not recoverable in-run: the receiver times
    out (:func:`repro.distributed.comm.recv_timeout`) and the supervised
    launcher retries the world.
``crash``
    :class:`~repro.errors.RankCrashError` is raised at the Nth
    communication op of the scheduled rank, modelling rank death.
    Recovered by supervised retry (+ shard checkpoints).

Faults are *armed* only while ``attempt < plan.fault_attempts``
(default 1), so a whole-run retry under the same plan is guaranteed to
converge: attempt 0 suffers the faults, attempt 1 runs clean.  Plans for
in-run-tolerated faults (delay, duplicate) may set ``fault_attempts``
high to prove tolerance without any retry.

Composition: the launcher applies fault wrapping *beneath* the
collective-order sentinel (``CheckedCommunicator(FaultyCommunicator(base))``),
so injected faults flow through checked collectives like real ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.distributed.comm import Communicator
from repro.errors import RankCrashError
from repro.util.hashing import edge_uniform

__all__ = [
    "FaultPlan",
    "FaultyCommunicator",
    "FaultCounters",
    "PlanBinder",
    "default_fault_matrix",
    "socket_fault_matrix",
    "disarm",
]

# Sub-seed offsets so drop/dup/delay decisions draw independent streams.
_KIND_DROP = 0x10001
_KIND_DUP = 0x20002
_KIND_DELAY = 0x30003
_KIND_DELAY_AMOUNT = 0x40004
_KIND_DISCONNECT = 0x50005
_KIND_PARTITION = 0x60006

_ENV_TAG = "__fault_envelope__"


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of communication faults.

    Probabilistic rates (``*_prob``) draw per-op uniforms from the seeded
    hash stream; targeted schedules (``*_at``, tuples of
    ``(rank, op_index)`` pairs) fire unconditionally, which is what the
    chaos matrix uses to guarantee coverage.  A ``drop_at``/``dup_at``
    entry fires once, at the first *send* whose op index is at or past the
    scheduled one -- sends interleave with recvs and barriers in
    workload-dependent order, and "at or after op N" keeps the entry from
    silently missing when op N happens to be a recv.  ``delay_at`` matches
    op indices exactly (every op kind can delay).  ``crash_rank`` raises
    :class:`~repro.errors.RankCrashError` at the first comm op whose index
    is ``>= crash_at`` on that rank.  Op indices count the wrapped rank's
    primitive communicator calls (``send``/``recv``/``barrier``) in
    program order; collectives decompose into these, so a crash "inside an
    alltoall" is expressible.
    """

    seed: int = 0
    name: str = ""
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.0
    drop_at: tuple[tuple[int, int], ...] = ()
    dup_at: tuple[tuple[int, int], ...] = ()
    delay_at: tuple[tuple[int, int], ...] = ()
    crash_rank: int | None = None
    crash_at: int = 0
    #: Socket-level fault kinds (no-ops on backends without the hooks):
    #: ``disconnect_at`` abruptly closes one peer connection at the first
    #: comm op at-or-after the scheduled index (the socket backend
    #: self-heals via reconnect + replay, so runs recover *in-run*);
    #: ``partition_at`` severs the link permanently (no reconnect is ever
    #: accepted -- both sides declare the peer dead and supervised retry
    #: recovers); ``slow_rank`` stalls every DATA frame that rank sends by
    #: ``slow_s`` seconds (heartbeats keep flowing, so slowness is not
    #: mistaken for death).
    disconnect_at: tuple[tuple[int, int], ...] = ()
    partition_at: tuple[tuple[int, int], ...] = ()
    slow_rank: int | None = None
    slow_s: float = 0.0
    #: Faults fire only on attempts < this (1 = first attempt only).
    fault_attempts: int = 1

    def binder(self, attempt: int = 0) -> "PlanBinder":
        """A picklable per-attempt communicator wrapper for the launcher."""
        return PlanBinder(self, attempt)

    def label(self) -> str:
        if self.name:
            return self.name
        kinds = []
        if self.drop_prob or self.drop_at:
            kinds.append("drop")
        if self.dup_prob or self.dup_at:
            kinds.append("dup")
        if self.delay_prob or self.delay_at:
            kinds.append("delay")
        if self.crash_rank is not None:
            kinds.append(f"crash@r{self.crash_rank}")
        if self.disconnect_at:
            kinds.append("disconnect")
        if self.partition_at:
            kinds.append("partition")
        if self.slow_rank is not None:
            kinds.append(f"slow@r{self.slow_rank}")
        return "+".join(kinds) or "noop"


@dataclass(frozen=True)
class PlanBinder:
    """Bind a plan to an attempt number; callable per-rank wrapper.

    Module-level and frozen so the process backend can ship it to
    children; the launcher calls it once per rank communicator.
    """

    plan: FaultPlan
    attempt: int = 0

    def __call__(self, comm: Communicator) -> "FaultyCommunicator":
        return FaultyCommunicator(comm, self.plan, attempt=self.attempt)


@dataclass
class FaultCounters:
    """What one wrapped rank actually injected (for tests/diagnostics)."""

    ops: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    deduplicated: int = 0
    crashes: int = 0
    disconnects: int = 0
    partitions: int = 0


class FaultyCommunicator(Communicator):
    """Inject a :class:`FaultPlan` into any communicator's message stream.

    Point-to-point ``send``/``recv`` and ``barrier`` are wrapped; the
    collectives inherit the :class:`Communicator` base implementations and
    therefore route through the faulty primitives, so faults reach
    collective traffic on every backend.  ``barrier`` delegates to the
    inner backend's (possibly native) implementation and counts as one op.

    The nonblocking surface (``isend``/``irecv``/``alltoall_start``/
    ``alltoall_finish``) is likewise inherited: the base defaults issue
    sends through :meth:`send` (so drops/dups/delays/crashes fire while
    the phase is in flight) and defer receives into the returned request,
    whose ``wait()`` runs through :meth:`recv` -- injected faults hit the
    split-phase exchange with no extra plumbing here.
    """

    def __init__(
        self,
        inner: Communicator,
        plan: FaultPlan,
        *,
        attempt: int = 0,
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._attempt = int(attempt)
        self._armed = self._attempt < plan.fault_attempts
        # Duplicates need receiver-side dedup, hence seq-numbered envelopes;
        # other fault kinds leave payloads untouched (preserving zero-copy).
        self._envelope = bool(plan.dup_prob > 0 or plan.dup_at)
        self._send_seq: dict[tuple[int, int], int] = {}
        self._seen: dict[tuple[int, int], set[int]] = {}
        self._fired: set[tuple[int, tuple[int, int]]] = set()
        self.counters = FaultCounters()
        if self._armed and plan.slow_rank == inner.rank and plan.slow_s > 0:
            # Slow-peer fault: installed once at construction; a backend
            # without the hook (thread/process) ignores the plan entry.
            setter = getattr(inner, "set_send_delay", None)
            if setter is not None:
                setter(plan.slow_s)

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def inner(self) -> Communicator:
        """The wrapped communicator."""
        return self._inner

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    # ---- deterministic decisions ----------------------------------------
    def _uniform(self, kind: int, op: int) -> float:
        # One scalar hash per decision: (op, rank/attempt) under a
        # kind-offset seed.  Scheduler-independent by construction.
        u = edge_uniform(
            np.uint64(op),
            np.uint64((self.rank << 32) ^ self._attempt),
            seed=self._plan.seed + kind,
            directed=True,
        )
        return float(u)

    def _send_fault(
        self,
        targeted: tuple[tuple[int, int], ...],
        prob: float,
        kind: int,
        op: int,
    ) -> bool:
        """Does a targeted-or-probabilistic send fault fire at ``op``?

        Each targeted entry fires once, at the first send with op index at
        or past the scheduled one (see :class:`FaultPlan`).
        """
        for entry in targeted:
            r, at = entry
            if r == self.rank and op >= at and (kind, entry) not in self._fired:
                self._fired.add((kind, entry))
                return True
        return prob > 0 and self._uniform(kind, op) < prob

    def _next_op(self) -> int:
        op = self.counters.ops
        self.counters.ops += 1
        if not self._armed:
            return op
        plan = self._plan
        if plan.crash_rank == self.rank and op >= plan.crash_at:
            self.counters.crashes += 1
            raise RankCrashError(
                f"injected crash: rank {self.rank} scheduled to die at comm "
                f"op {plan.crash_at} (attempt {self._attempt}, plan "
                f"'{plan.label()}', seed {plan.seed})"
            )
        if (self.rank, op) in plan.delay_at or (
            plan.delay_prob > 0
            and self._uniform(_KIND_DELAY, op) < plan.delay_prob
        ):
            self.counters.delayed += 1
            time.sleep(plan.delay_s * self._uniform(_KIND_DELAY_AMOUNT, op))
        for entry in plan.disconnect_at:
            r, at = entry
            if (
                r == self.rank
                and op >= at
                and (_KIND_DISCONNECT, entry) not in self._fired
            ):
                self._fired.add((_KIND_DISCONNECT, entry))
                hook = getattr(self._inner, "inject_disconnect", None)
                if hook is not None:
                    self.counters.disconnects += 1
                    hook()
        for entry in plan.partition_at:
            r, at = entry
            if (
                r == self.rank
                and op >= at
                and (_KIND_PARTITION, entry) not in self._fired
            ):
                self._fired.add((_KIND_PARTITION, entry))
                hook = getattr(self._inner, "inject_partition", None)
                if hook is not None:
                    self.counters.partitions += 1
                    hook()
        return op

    # ---- faulty point-to-point ------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        op = self._next_op()
        if self._armed and self._send_fault(
            self._plan.drop_at, self._plan.drop_prob, _KIND_DROP, op
        ):
            self.counters.dropped += 1
            return
        payload = obj
        if self._envelope:
            key = (dest, tag)
            seq = self._send_seq.get(key, 0)
            self._send_seq[key] = seq + 1
            payload = (_ENV_TAG, seq, obj)
        self._inner.send(payload, dest, tag)
        if self._armed and self._send_fault(
            self._plan.dup_at, self._plan.dup_prob, _KIND_DUP, op
        ):
            self.counters.duplicated += 1
            self._inner.send(payload, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        self._next_op()
        while True:
            obj = self._inner.recv(source, tag)
            if not (
                isinstance(obj, tuple) and len(obj) == 3 and obj[0] == _ENV_TAG
            ):
                return obj
            _, seq, payload = obj
            seen = self._seen.setdefault((source, tag), set())
            if seq in seen:
                # Duplicate delivery: discard and wait for the next message.
                self.counters.deduplicated += 1
                continue
            seen.add(seq)
            return payload

    def barrier(self) -> None:
        self._next_op()
        self._inner.barrier()


def default_fault_matrix(
    seed: int = 0, nranks: int = 4
) -> list[FaultPlan]:
    """The seeded chaos matrix: >= 12 plans covering every fault kind.

    Targeted faults (fixed ``(rank, op)`` schedules) guarantee each kind
    actually fires on small worlds; the probabilistic plans exercise the
    attempt-reseeded retry path.  Crash/drop plans arm faults on the first
    attempt only, so supervised retry converges deterministically;
    duplicate/delay plans stay armed on every attempt because the runtime
    tolerates them without a retry.
    """
    last = max(0, nranks - 1)
    tolerated = {"fault_attempts": 1 << 20}
    plans = [
        # -- crashes: first op, mid-stream, late, on different ranks ------
        FaultPlan(seed=seed + 1, name="crash-r0-op0", crash_rank=0, crash_at=0),
        FaultPlan(seed=seed + 2, name="crash-r1-op3", crash_rank=min(1, last),
                  crash_at=3),
        FaultPlan(seed=seed + 3, name=f"crash-r{last}-op5", crash_rank=last,
                  crash_at=5),
        # -- drops: targeted on specific ops, plus a probabilistic plan ---
        FaultPlan(seed=seed + 4, name="drop-r0-op1", drop_at=((0, 1),)),
        FaultPlan(seed=seed + 5, name=f"drop-r{last}-op2",
                  drop_at=((last, 2),)),
        FaultPlan(seed=seed + 6, name="drop-p10", drop_prob=0.10),
        # -- delays: in-run tolerated, armed on every attempt -------------
        FaultPlan(seed=seed + 7, name="delay-all", delay_prob=1.0,
                  delay_s=0.02, **tolerated),
        FaultPlan(seed=seed + 8, name="delay-r1-heavy",
                  delay_at=tuple((min(1, last), op) for op in range(4)),
                  delay_s=0.05, **tolerated),
        # -- duplicates: in-run tolerated via envelope dedup --------------
        FaultPlan(seed=seed + 9, name="dup-all", dup_prob=1.0, **tolerated),
        FaultPlan(seed=seed + 10, name="dup-r0-early",
                  dup_at=tuple((0, op) for op in range(3)), **tolerated),
        # -- compound plans ----------------------------------------------
        FaultPlan(seed=seed + 11, name="drop+delay", drop_at=((0, 2),),
                  delay_prob=0.5, delay_s=0.01),
        FaultPlan(seed=seed + 12, name="dup+crash", dup_prob=1.0,
                  crash_rank=min(1, last), crash_at=4),
    ]
    return plans


def socket_fault_matrix(
    seed: int = 0, nranks: int = 4
) -> list[FaultPlan]:
    """Fault plans that exercise the socket backend's recovery machinery.

    Disconnect plans sever a live TCP connection mid-run; the socket
    backend is expected to reconnect and replay in-flight frames, so these
    stay armed on every attempt (tolerated in-run, no retry needed).
    Partition plans are permanent for the attempt -- the victim refuses
    reconnection until the rank is torn down -- so they arm on the first
    attempt only and supervised retry recovers.  Slow-peer plans throttle
    one rank's sends while heartbeats keep flowing, proving liveness
    detection does not misfire on a slow-but-alive peer.

    On non-socket backends the disconnect/partition/slow hooks resolve to
    ``None`` and the plans degrade to no-fault reference runs.
    """
    last = max(0, nranks - 1)
    tolerated = {"fault_attempts": 1 << 20}
    plans = [
        # -- disconnects: self-healing, tolerated within a single run.
        # Firing at op 0 severs the link before the victim-bound data has
        # moved, so the run *must* reconnect and replay to finish -- a
        # later op can land after that peer's sends already completed,
        # quietly testing the happy path instead of the heal.
        FaultPlan(seed=seed + 101, name="sock-disc-r1-op0",
                  disconnect_at=((min(1, last), 0),), **tolerated),
        FaultPlan(seed=seed + 102, name=f"sock-disc-r{last}-op0",
                  disconnect_at=((last, 0),), **tolerated),
        FaultPlan(seed=seed + 103, name="sock-disc-multi",
                  disconnect_at=((0, 0), (min(1, last), 2)), **tolerated),
        # -- partition: permanent for the attempt; supervised retry heals -
        FaultPlan(seed=seed + 104, name="sock-partition-r1",
                  partition_at=((min(1, last), 2),)),
        # -- slow peer: heartbeats keep it alive despite throttled sends --
        FaultPlan(seed=seed + 105, name="sock-slow-r0", slow_rank=0,
                  slow_s=0.02, **tolerated),
        # -- compound: disconnect under duplicate pressure ----------------
        FaultPlan(seed=seed + 106, name="sock-disc+dup",
                  disconnect_at=((0, 0),), dup_prob=1.0, **tolerated),
    ]
    return plans


def disarm(plan: FaultPlan) -> FaultPlan:
    """A copy of ``plan`` that injects nothing (for A/B reference runs)."""
    return replace(plan, fault_attempts=0)

"""Edge shuffle: route generated edges to their storage owners.

"If edges are being stored, the processor responsible for generating an edge
must then send it to the processor responsible for its storage as determined
by some mapping scheme" (Section III).  The shuffle is deliberately
independent of how edges were generated -- the modularity the paper calls
out -- so both the 1-D and 2-D generators reuse it unchanged.

Two bucketing kernels are provided:

``method="scatter"`` (default):
    a counting-sort scatter.  Owner ids are bounded by the world size, so
    they fit a narrow integer dtype and numpy's stable small-integer sort is
    a radix/counting sort -- O(m + nparts) instead of the O(m log m)
    comparison argsort.  On a 1M-edge block with 8 owners this is ~3x the
    legacy path (see ``benchmarks/bench_kernels.py``).
``method="argsort"``:
    the legacy stable comparison sort, kept selectable for A/B testing and
    as the reference the property tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import Communicator
from repro.distributed.partition import owners_by_edge_hash, owners_by_vertex_block
from repro.errors import CommunicatorError
from repro.telemetry.session import telemetry_of

__all__ = [
    "counting_scatter",
    "bucket_edges",
    "exchange_edges",
    "shuffle_to_owners",
]


def _owner_sort_dtype(nparts: int) -> np.dtype:
    """Narrowest unsigned dtype holding owner ids, to hit numpy's radix sort."""
    if nparts <= 1 << 8:
        return np.dtype(np.uint8)
    if nparts <= 1 << 16:
        return np.dtype(np.uint16)
    # numpy's radix sort covers 1- and 2-byte ints; wider worlds fall back
    # to a comparison sort on int32, still cheaper than int64 keys.
    return np.dtype(np.int32)


def _gather_rows(rows: np.ndarray, order: np.ndarray) -> np.ndarray:
    """``rows[order]`` for 2-D row arrays, via a single flat 1-D take.

    Gathering an ``(m, 2)`` int64 array row-wise through a 16-byte-element
    view is ~3x faster than the 2-D fancy index numpy would otherwise run.
    """
    if (
        rows.ndim == 2
        and rows.shape[1] == 2
        and rows.itemsize == 8
        and rows.flags.c_contiguous
    ):
        flat = rows.view(np.complex128).reshape(-1)
        return flat.take(order).view(rows.dtype).reshape(-1, 2)
    return rows[order]


def counting_scatter(
    rows: np.ndarray, owners: np.ndarray, nparts: int
) -> list[np.ndarray]:
    """Split ``rows`` into ``nparts`` buckets by ``owners`` without a
    comparison sort.

    Stable (rows keep their relative order inside each bucket), so the
    output is row-for-row identical to the legacy stable-argsort split.
    Returned buckets are views into one backing array -- treat them as
    read-only, like buffers received from :meth:`Communicator.alltoall`.
    """
    order = np.argsort(owners.astype(_owner_sort_dtype(nparts)), kind="stable")
    sorted_rows = _gather_rows(rows, order)
    counts = np.bincount(owners, minlength=nparts)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [sorted_rows[bounds[d] : bounds[d + 1]] for d in range(nparts)]


def edge_owners(
    edges: np.ndarray,
    nparts: int,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Owner rank of each edge row under a storage scheme.

    Schemes
    -------
    ``"source_block"``:
        owner of ``(u, v)`` is the block owner of ``u`` (requires ``n``,
        the product vertex count).  This is the typical adjacency-storage
        layout: each rank stores the rows of its vertex range.
    ``"edge_hash"``:
        owner is ``hash(u, v) % nparts`` -- load-balanced, direction
        independent.
    """
    if scheme == "source_block":
        if n is None:
            raise ValueError("source_block scheme requires the vertex count n")
        return owners_by_vertex_block(edges[:, 0], n, nparts)
    if scheme == "edge_hash":
        return owners_by_edge_hash(edges, nparts, seed)
    raise ValueError(f"unknown scheme {scheme!r}")


def bucket_edges(
    edges: np.ndarray,
    nparts: int,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
    method: str = "scatter",
) -> list[np.ndarray]:
    """Split an edge block into per-owner buckets.

    See :func:`edge_owners` for the schemes and the module docstring for the
    two bucketing ``method``s.  Both methods return identical bucket
    contents in identical row order.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    owners = edge_owners(edges, nparts, scheme=scheme, n=n, seed=seed)
    if method == "scatter":
        return counting_scatter(edges, owners, nparts)
    if method == "argsort":
        order = np.argsort(owners, kind="stable")
        sorted_edges = edges[order]
        counts = np.bincount(owners, minlength=nparts)
        splits = np.cumsum(counts)[:-1]
        return np.split(sorted_edges, splits)
    raise ValueError(f"unknown bucketing method {method!r}")


def _as_edge_block(blk: np.ndarray | None) -> np.ndarray | None:
    """Normalize one received bucket; ``None``/empty become ``None``.

    A received payload that cannot be an edge block (odd element count,
    non-numeric dtype) means a corrupted or misrouted message; raise a
    diagnostic naming the problem instead of letting ``reshape`` throw a
    bare ``ValueError`` deep in the exchange.
    """
    if blk is None:
        return None
    blk = np.asarray(blk)
    if blk.size == 0:
        return None
    if blk.dtype.kind not in "biu" or blk.size % 2:
        raise CommunicatorError(
            f"received edge block with dtype {blk.dtype} and shape "
            f"{blk.shape}: not interpretable as (m, 2) integer edges -- "
            f"a corrupted or misrouted exchange message"
        )
    return blk.reshape(-1, 2)


def exchange_edges(
    comm: Communicator, outgoing: list[np.ndarray]
) -> np.ndarray:
    """All-to-all exchange of per-destination edge buckets.

    ``outgoing[d]`` is the block this rank routes to rank ``d``; returns the
    vertical stack of everything received (own bucket included).  Defensive
    about what backends hand back: ``None`` entries and zero-size blocks of
    any shape are skipped, and received buffers are never mutated (the
    zero-copy process backend may return read-only shared views -- see
    :meth:`Communicator.alltoall`); the returned stack is a fresh array this
    rank owns.
    """
    tel = telemetry_of(comm)
    with tel.span("exchange", cat="phase"):
        tel.add("edges.routed", sum(len(b) for b in outgoing if b is not None))
        incoming = comm.alltoall(outgoing)
        blocks = [b for b in map(_as_edge_block, incoming) if b is not None]
        if not blocks:
            received = np.empty((0, 2), dtype=np.int64)
        else:
            received = np.vstack(blocks)
    tel.add("edges.received", len(received))
    return received


def shuffle_to_owners(
    comm: Communicator,
    edges: np.ndarray,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
    method: str = "scatter",
) -> np.ndarray:
    """Bucket locally generated edges and exchange them in one collective."""
    with telemetry_of(comm).span("route", cat="phase", method=method):
        outgoing = bucket_edges(
            edges, comm.size, scheme=scheme, n=n, seed=seed, method=method
        )
    return exchange_edges(comm, outgoing)

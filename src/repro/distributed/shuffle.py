"""Edge shuffle: route generated edges to their storage owners.

"If edges are being stored, the processor responsible for generating an edge
must then send it to the processor responsible for its storage as determined
by some mapping scheme" (Section III).  The shuffle is deliberately
independent of how edges were generated -- the modularity the paper calls
out -- so both the 1-D and 2-D generators reuse it unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import Communicator
from repro.distributed.partition import owners_by_edge_hash, owners_by_vertex_block

__all__ = ["bucket_edges", "exchange_edges", "shuffle_to_owners"]


def bucket_edges(
    edges: np.ndarray,
    nparts: int,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
) -> list[np.ndarray]:
    """Split an edge block into per-owner buckets.

    Schemes
    -------
    ``"source_block"``:
        owner of ``(u, v)`` is the block owner of ``u`` (requires ``n``,
        the product vertex count).  This is the typical adjacency-storage
        layout: each rank stores the rows of its vertex range.
    ``"edge_hash"``:
        owner is ``hash(u, v) % nparts`` -- load-balanced, direction
        independent.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if scheme == "source_block":
        if n is None:
            raise ValueError("source_block scheme requires the vertex count n")
        owners = owners_by_vertex_block(edges[:, 0], n, nparts)
    elif scheme == "edge_hash":
        owners = owners_by_edge_hash(edges, nparts, seed)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    order = np.argsort(owners, kind="stable")
    sorted_edges = edges[order]
    counts = np.bincount(owners, minlength=nparts)
    splits = np.cumsum(counts)[:-1]
    return np.split(sorted_edges, splits)


def exchange_edges(
    comm: Communicator, outgoing: list[np.ndarray]
) -> np.ndarray:
    """All-to-all exchange of per-destination edge buckets.

    ``outgoing[d]`` is the block this rank routes to rank ``d``; returns the
    vertical stack of everything received (own bucket included).
    """
    incoming = comm.alltoall(outgoing)
    blocks = [blk for blk in incoming if blk is not None and len(blk)]
    if not blocks:
        return np.empty((0, 2), dtype=np.int64)
    return np.vstack(blocks)


def shuffle_to_owners(
    comm: Communicator,
    edges: np.ndarray,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Bucket locally generated edges and exchange them in one collective."""
    outgoing = bucket_edges(
        edges, comm.size, scheme=scheme, n=n, seed=seed
    )
    return exchange_edges(comm, outgoing)

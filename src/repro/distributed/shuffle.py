"""Edge shuffle: route generated edges to their storage owners.

"If edges are being stored, the processor responsible for generating an edge
must then send it to the processor responsible for its storage as determined
by some mapping scheme" (Section III).  The shuffle is deliberately
independent of how edges were generated -- the modularity the paper calls
out -- so both the 1-D and 2-D generators reuse it unchanged.

Two bucketing kernels are provided:

``method="scatter"`` (default):
    a counting-sort scatter.  Owner ids are bounded by the world size, so
    they fit a narrow integer dtype and numpy's stable small-integer sort is
    a radix/counting sort -- O(m + nparts) instead of the O(m log m)
    comparison argsort.  On a 1M-edge block with 8 owners this is ~3x the
    legacy path (see ``benchmarks/bench_kernels.py``).
``method="argsort"``:
    the legacy stable comparison sort, kept selectable for A/B testing and
    as the reference the property tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import Communicator, Request
from repro.distributed.partition import owners_by_edge_hash, owners_by_vertex_block
from repro.distributed.wire import decode_edges, encode_edges, is_wire_block
from repro.errors import CommunicatorError
from repro.telemetry.session import telemetry_of

__all__ = [
    "counting_scatter",
    "bucket_edges",
    "exchange_edges",
    "exchange_edges_start",
    "exchange_edges_finish",
    "shuffle_to_owners",
    "WIRE_FORMATS",
]

#: Valid values of the ``wire`` knob: ``"raw"`` ships int64 blocks as-is,
#: ``"varint"`` delta-sorts and varint-encodes them (see
#: :mod:`repro.distributed.wire`).
WIRE_FORMATS = ("raw", "varint")


def _check_wire(wire: str) -> None:
    if wire not in WIRE_FORMATS:
        raise ValueError(
            f"unknown wire format {wire!r}; expected one of {WIRE_FORMATS}"
        )


def _owner_sort_dtype(nparts: int) -> np.dtype:
    """Narrowest unsigned dtype holding owner ids, to hit numpy's radix sort."""
    if nparts <= 1 << 8:
        return np.dtype(np.uint8)
    if nparts <= 1 << 16:
        return np.dtype(np.uint16)
    # numpy's radix sort covers 1- and 2-byte ints; wider worlds fall back
    # to a comparison sort on int32, still cheaper than int64 keys.
    return np.dtype(np.int32)


def _gather_rows(rows: np.ndarray, order: np.ndarray) -> np.ndarray:
    """``rows[order]`` for 2-D row arrays, via a single flat 1-D take.

    Gathering an ``(m, 2)`` int64 array row-wise through a 16-byte-element
    view is ~3x faster than the 2-D fancy index numpy would otherwise run.
    """
    if (
        rows.ndim == 2
        and rows.shape[1] == 2
        and rows.itemsize == 8
        and rows.flags.c_contiguous
    ):
        flat = rows.view(np.complex128).reshape(-1)
        return flat.take(order).view(rows.dtype).reshape(-1, 2)
    return rows[order]


def counting_scatter(
    rows: np.ndarray, owners: np.ndarray, nparts: int
) -> list[np.ndarray]:
    """Split ``rows`` into ``nparts`` buckets by ``owners`` without a
    comparison sort.

    Stable (rows keep their relative order inside each bucket), so the
    output is row-for-row identical to the legacy stable-argsort split.
    Returned buckets are views into one backing array -- treat them as
    read-only, like buffers received from :meth:`Communicator.alltoall`.
    """
    order = np.argsort(owners.astype(_owner_sort_dtype(nparts)), kind="stable")
    sorted_rows = _gather_rows(rows, order)
    counts = np.bincount(owners, minlength=nparts)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [sorted_rows[bounds[d] : bounds[d + 1]] for d in range(nparts)]


def edge_owners(
    edges: np.ndarray,
    nparts: int,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Owner rank of each edge row under a storage scheme.

    Schemes
    -------
    ``"source_block"``:
        owner of ``(u, v)`` is the block owner of ``u`` (requires ``n``,
        the product vertex count).  This is the typical adjacency-storage
        layout: each rank stores the rows of its vertex range.
    ``"edge_hash"``:
        owner is ``hash(u, v) % nparts`` -- load-balanced, direction
        independent.
    """
    if scheme == "source_block":
        if n is None:
            raise ValueError("source_block scheme requires the vertex count n")
        return owners_by_vertex_block(edges[:, 0], n, nparts)
    if scheme == "edge_hash":
        return owners_by_edge_hash(edges, nparts, seed)
    raise ValueError(f"unknown scheme {scheme!r}")


def bucket_edges(
    edges: np.ndarray,
    nparts: int,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
    method: str = "scatter",
) -> list[np.ndarray]:
    """Split an edge block into per-owner buckets.

    See :func:`edge_owners` for the schemes and the module docstring for the
    two bucketing ``method``s.  Both methods return identical bucket
    contents in identical row order.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    owners = edge_owners(edges, nparts, scheme=scheme, n=n, seed=seed)
    if method == "scatter":
        return counting_scatter(edges, owners, nparts)
    if method == "argsort":
        order = np.argsort(owners, kind="stable")
        sorted_edges = edges[order]
        counts = np.bincount(owners, minlength=nparts)
        splits = np.cumsum(counts)[:-1]
        return np.split(sorted_edges, splits)
    raise ValueError(f"unknown bucketing method {method!r}")


def _as_edge_block(blk: np.ndarray | None) -> np.ndarray | None:
    """Normalize one received bucket; ``None``/empty become ``None``.

    Wire-encoded payloads (:func:`repro.distributed.wire.encode_edges`)
    are decoded first -- their uint8 streams may have odd length, so the
    magic check must precede the generic shape validation.  A payload
    that is neither a wire block nor interpretable as ``(m, 2)`` integer
    edges (odd element count, non-numeric dtype) means a corrupted or
    misrouted message; raise a diagnostic naming the problem instead of
    letting ``reshape`` throw a bare ``ValueError`` deep in the exchange.
    """
    if blk is None:
        return None
    blk = np.asarray(blk)
    if blk.size == 0:
        return None
    if is_wire_block(blk):
        decoded = decode_edges(blk)
        return decoded if decoded.size else None
    if blk.dtype.kind not in "biu" or blk.size % 2:
        raise CommunicatorError(
            f"received edge block with dtype {blk.dtype} and shape "
            f"{blk.shape}: not interpretable as (m, 2) integer edges -- "
            f"a corrupted or misrouted exchange message"
        )
    return blk.reshape(-1, 2)


def _encode_outgoing(
    outgoing: list[np.ndarray], wire: str, tel
) -> list[np.ndarray]:
    """Apply the wire format to per-destination buckets (counting bytes)."""
    if wire == "raw":
        return outgoing
    raw_bytes = 0
    encoded: list[np.ndarray | None] = []
    for blk in outgoing:
        if blk is None or np.asarray(blk).size == 0:
            encoded.append(None)
            continue
        blk = np.asarray(blk, dtype=np.int64).reshape(-1, 2)
        raw_bytes += blk.nbytes
        encoded.append(encode_edges(blk))
    tel.add("exchange.bytes_raw", raw_bytes)
    tel.add(
        "exchange.bytes_wire",
        sum(e.nbytes for e in encoded if e is not None),
    )
    return encoded


def _stack_received(incoming: list) -> np.ndarray:
    blocks = [b for b in map(_as_edge_block, incoming) if b is not None]
    if not blocks:
        return np.empty((0, 2), dtype=np.int64)
    return np.vstack(blocks)


def exchange_edges(
    comm: Communicator, outgoing: list[np.ndarray], *, wire: str = "raw"
) -> np.ndarray:
    """All-to-all exchange of per-destination edge buckets.

    ``outgoing[d]`` is the block this rank routes to rank ``d``; returns the
    vertical stack of everything received (own bucket included).  Defensive
    about what backends hand back: ``None`` entries and zero-size blocks of
    any shape are skipped, and received buffers are never mutated (the
    zero-copy process backend may return read-only shared views -- see
    :meth:`Communicator.alltoall`); the returned stack is a fresh array this
    rank owns.

    ``wire="varint"`` compresses each bucket before the collective and
    decodes on receipt (:mod:`repro.distributed.wire`); the received
    *multiset* of edges is identical, but rows arrive sorted per block.
    """
    _check_wire(wire)
    tel = telemetry_of(comm)
    with tel.span("exchange", cat="phase"):
        tel.add("edges.routed", sum(len(b) for b in outgoing if b is not None))
        payload = _encode_outgoing(outgoing, wire, tel)
        incoming = comm.alltoall(payload)
        received = _stack_received(incoming)
    tel.add("edges.received", len(received))
    return received


def exchange_edges_start(
    comm: Communicator, outgoing: list[np.ndarray], *, wire: str = "raw"
) -> Request:
    """Issue the split-phase half of :func:`exchange_edges`.

    Buckets are (optionally) wire-encoded and the exchange is started via
    :meth:`Communicator.alltoall_start`; the returned request is fed to
    :func:`exchange_edges_finish`.  Between the two calls the caller owns
    neither the outgoing buckets (in-flight, see
    :class:`~repro.distributed.comm.Request`) nor any received data yet --
    it should generate the *next* chunk, which is the entire point.
    """
    _check_wire(wire)
    tel = telemetry_of(comm)
    with tel.span("exchange.issue", cat="phase"):
        tel.add("edges.routed", sum(len(b) for b in outgoing if b is not None))
        payload = _encode_outgoing(outgoing, wire, tel)
        return comm.alltoall_start(payload)


def exchange_edges_finish(comm: Communicator, request: Request) -> np.ndarray:
    """Complete a split-phase exchange; returns the stacked received edges.

    Emits the same ``exchange`` span and ``edges.received`` counter as the
    blocking :func:`exchange_edges`, so phase-level trace consumers see a
    single exchange regardless of pipeline mode (the span now covers only
    the wait + decode, with issue time under ``exchange.issue``).
    """
    tel = telemetry_of(comm)
    with tel.span("exchange", cat="phase"):
        incoming = comm.alltoall_finish(request)
        received = _stack_received(incoming)
    tel.add("edges.received", len(received))
    return received


def shuffle_to_owners(
    comm: Communicator,
    edges: np.ndarray,
    *,
    scheme: str = "source_block",
    n: int | None = None,
    seed: int = 0,
    method: str = "scatter",
    wire: str = "raw",
) -> np.ndarray:
    """Bucket locally generated edges and exchange them in one collective."""
    with telemetry_of(comm).span("route", cat="phase", method=method):
        outgoing = bucket_edges(
            edges, comm.size, scheme=scheme, n=n, seed=seed, method=method
        )
    return exchange_edges(comm, outgoing, wire=wire)

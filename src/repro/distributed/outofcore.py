"""Out-of-core distributed generation: stream product shards to disk.

At paper scale the product never fits in memory; each rank streams its
``C_r`` chunks straight to its own shard file.  This module wires the
chunked generator to the partitioned file layout of :mod:`repro.graph.io`,
so the full pipeline is::

    factors on disk -> per-rank generation -> per-rank shard files,

with peak memory bounded by ``chunk_size`` product edges per rank
regardless of ``|E_C|``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.distributed.comm import Communicator
from repro.distributed.launcher import spmd_run
from repro.distributed.partition import partition_edges_1d, partition_edges_2d
from repro.errors import PartitionError
from repro.graph.edgelist import EdgeList
from repro.kronecker.product import DEFAULT_CHUNK, iter_kron_product

__all__ = ["ShardManifest", "generate_to_directory"]


@dataclass(frozen=True)
class ShardManifest:
    """What one out-of-core run produced."""

    directory: Path
    n: int
    nranks: int
    edges_total: int
    shard_paths: list[Path]

    def load(self) -> EdgeList:
        """Read every shard back into one edge list (for verification)."""
        parts = []
        for p in self.shard_paths:
            arr = np.load(p)["edges"]
            if len(arr):
                parts.append(arr)
        edges = (
            np.vstack(parts) if parts else np.empty((0, 2), dtype=np.int64)
        )
        return EdgeList(edges, self.n)


def _rank_stream_to_file(
    comm: Communicator,
    cells,
    directory: str,
    chunk_size: int,
    skg=None,
) -> tuple[str, int]:
    """Rank program: stream this rank's cells into one ``.npz`` shard.

    Chunks are buffered per rank and written once at the end of the rank's
    generation (numpy's npz container is not appendable); the buffered list
    holds views of at most ``chunk_size`` edges each, so peak *extra*
    memory beyond the final shard is one chunk.  With an SKG spec the
    chunks are filtered through the deterministic acceptance hash before
    buffering, so the shard holds (and the count reports) accepted edges
    only.
    """
    acceptor = None
    if skg is not None:
        from repro.skg.sample import SKGAcceptor

        acceptor = SKGAcceptor(skg)
    out_path = Path(directory) / f"shard_{comm.rank:05d}.npz"
    blocks: list[np.ndarray] = []
    count = 0
    for part_a, part_b in cells:
        for blk in iter_kron_product(part_a, part_b, chunk_size):
            if acceptor is not None:
                blk = acceptor.filter_edges(blk)
            if len(blk):
                blocks.append(blk)
                count += len(blk)
    edges = np.vstack(blocks) if blocks else np.empty((0, 2), dtype=np.int64)
    np.savez_compressed(out_path, edges=edges)
    return str(out_path), count


def generate_to_directory(
    el_a: EdgeList,
    el_b: EdgeList,
    directory: str | os.PathLike,
    nranks: int,
    *,
    scheme: str = "2d",
    backend: str = "thread",
    chunk_size: int = DEFAULT_CHUNK,
    rendezvous: str | None = None,
    local_ranks: tuple[int, ...] | None = None,
    skg=None,
) -> ShardManifest:
    """Generate ``A (x) B`` across ranks, writing one shard file per rank.

    Returns a :class:`ShardManifest`; ``manifest.load()`` reassembles the
    product for verification at test scale.  ``rendezvous`` (socket
    backend only) points the ranks at an external ``host:port`` roster
    server instead of a private in-process one; ``local_ranks`` restricts
    this invocation to its share of a multi-host world, in which case the
    manifest covers only the shards written on this host (the remote
    shards live on the other hosts' filesystems).  ``skg`` (an
    :class:`repro.skg.model.SKGSpec`) filters the streamed product with
    the stochastic tier's acceptance hash -- the factors must then
    enumerate the spec's candidate space
    (:func:`repro.skg.distributed.skg_candidate_factors`).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if scheme == "1d":
        assignments = [
            [(part, el_b)] for part in partition_edges_1d(el_a, nranks)
        ]
    elif scheme == "2d":
        assignments = partition_edges_2d(el_a, el_b, nranks)
    else:
        raise PartitionError(f"unknown scheme {scheme!r}")

    def rank_fn(comm: Communicator):
        return _rank_stream_to_file(
            comm, assignments[comm.rank], str(directory), chunk_size, skg
        )

    if backend in ("process", "socket"):
        # multiprocess backends need a picklable module-level callable
        run_kwargs = {"backend": backend}
        if rendezvous is not None:
            run_kwargs["rendezvous"] = rendezvous
        if local_ranks is not None:
            run_kwargs["local_ranks"] = local_ranks
        results = spmd_run(
            _rank_entry, nranks, assignments, str(directory), chunk_size,
            skg, **run_kwargs,
        )
    else:
        results = spmd_run(rank_fn, nranks, backend=backend)
    # Ranks launched on other hosts report None slots; their shards are
    # on those hosts, so this manifest covers the local share only.
    local = [r for r in results if r is not None]
    paths = [Path(p) for p, _c in local]
    total = sum(c for _p, c in local)
    return ShardManifest(
        directory=directory,
        n=el_a.n * el_b.n,
        nranks=nranks,
        edges_total=total,
        shard_paths=paths,
    )


def _rank_entry(comm, assignments, directory, chunk_size, skg=None):
    """Module-level entry for the process backend (picklable)."""
    return _rank_stream_to_file(
        comm, assignments[comm.rank], directory, chunk_size, skg
    )

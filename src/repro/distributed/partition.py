"""Edge and vertex partitioning schemes (Section III and Remark 1).

**1-D scheme** (the paper's primary implementation): the edges of factor A
are split evenly across the ``R`` processors and B is replicated, so rank
``r`` generates ``C_r = A_r (x) B``.  Per-rank storage is
``O(|E_A|/R + |E_B|)`` and parallelism is capped at ``|E_A|`` ranks -- the
scalability limit Remark 1 identifies.

**2-D scheme** (Remark 1's fix): with ``R_half = ceil(sqrt(R))``, split A
into ``R_half`` parts and B into ``ceil(R / R_half)`` parts; rank ``r``
generates ``A_{r % R_half} (x) B_{r // R_half}``, enabling up to
``|E_A| |E_B| = |E_C|`` ranks and weak scaling.

Vertex-to-owner maps (block and hash) decide where generated product edges
are *stored*, independent of where they are generated -- the modularity the
paper calls out.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import PartitionError
from repro.graph.edgelist import EdgeList
from repro.util.hashing import hash_pair

__all__ = [
    "partition_edges_1d",
    "grid_shape_2d",
    "partition_edges_2d",
    "owners_by_vertex_block",
    "vertex_block_bounds",
    "owners_by_edge_hash",
]


def partition_edges_1d(el: EdgeList, nparts: int) -> list[EdgeList]:
    """Even contiguous split of the edge rows into ``nparts`` shards.

    Each shard keeps the full vertex id space (``n`` unchanged) -- shard
    ``r`` is the paper's ``A_r`` with ``A = sum_r A_r``.
    """
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    bounds = np.linspace(0, el.m_directed, nparts + 1).astype(np.int64)
    return [
        EdgeList(el.edges[bounds[r] : bounds[r + 1]], el.n)
        for r in range(nparts)
    ]


def grid_shape_2d(nranks: int) -> tuple[int, int]:
    """Remark 1's grid: ``(R_half, ceil(R / R_half))`` with ``R_half = ceil(sqrt(R))``.

    The grid has at least ``nranks`` cells; :func:`partition_edges_2d`
    folds any surplus cells back onto ranks so coverage is always exact.
    """
    if nranks < 1:
        raise PartitionError(f"nranks must be >= 1, got {nranks}")
    r_half = math.isqrt(nranks)
    if r_half * r_half < nranks:
        r_half += 1
    return r_half, math.ceil(nranks / r_half)


def partition_edges_2d(
    el_a: EdgeList, el_b: EdgeList, nranks: int
) -> list[list[tuple[EdgeList, EdgeList]]]:
    """Per-rank generation cells under the 2-D scheme.

    The canonical assignment gives cell ``c`` of the ``R_half x R_b`` grid
    -- the pair ``(A_{c % R_half}, B_{c // R_half})`` -- to rank
    ``c % nranks``.  For square worlds (``nranks == R_half * R_b``) every
    rank gets exactly one cell, matching Remark 1 verbatim; otherwise the
    trailing cells fold onto ranks round-robin so that the union of all
    per-rank products is exactly ``A (x) B``, each cell generated once.

    Returns a length-``nranks`` list of per-rank cell lists.
    """
    r_half, r_b = grid_shape_2d(nranks)
    parts_a = partition_edges_1d(el_a, r_half)
    parts_b = partition_edges_1d(el_b, r_b)
    assignments: list[list[tuple[EdgeList, EdgeList]]] = [
        [] for _ in range(nranks)
    ]
    for c in range(r_half * r_b):
        assignments[c % nranks].append((parts_a[c % r_half], parts_b[c // r_half]))
    return assignments


def owners_by_vertex_block(vertices: np.ndarray, n: int, nparts: int) -> np.ndarray:
    """Block map: vertex ``v`` is owned by ``v * nparts // n`` (contiguous ranges)."""
    if nparts < 1 or n < 1:
        raise PartitionError("n and nparts must be >= 1")
    v = np.asarray(vertices, dtype=np.int64)
    return (v * nparts) // n


def vertex_block_bounds(n: int, nparts: int) -> np.ndarray:
    """Vertex-range boundaries of the block map, inverse of
    :func:`owners_by_vertex_block`.

    Returns the ``(nparts + 1,)`` int64 array ``bounds`` with rank ``d``
    owning exactly the vertices ``bounds[d] <= v < bounds[d + 1]``:
    ``bounds[d] = ceil(d * n / nparts)``.  The routed generation kernel uses
    these boundaries to assign owners analytically instead of evaluating the
    owner map per product edge.
    """
    if nparts < 1 or n < 1:
        raise PartitionError("n and nparts must be >= 1")
    d = np.arange(nparts + 1, dtype=np.int64)
    return -(-(d * np.int64(n)) // np.int64(nparts))


def owners_by_edge_hash(
    edges: np.ndarray, nparts: int, seed: int = 0
) -> np.ndarray:
    """Hash map: edge ``(u, v)`` is owned by ``hash(u, v) % nparts``.

    Symmetric (direction-independent) so both directions of an undirected
    edge land on the same owner.
    """
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    h = hash_pair(e[:, 0], e[:, 1], seed)
    return (h % np.uint64(nparts)).astype(np.int64)

"""Distributed validation analytics over partition-local edges.

After distributed generation, each rank holds a slice of ``E_C``.  These
helpers compute whole-graph statistics without centralizing the edges,
mirroring how validation runs at paper scale: local vectorized pass + one
collective reduction.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import Communicator

__all__ = [
    "distributed_edge_count",
    "distributed_degree_counts",
    "distributed_degree_histogram",
    "distributed_max_vertex",
]


def distributed_edge_count(comm: Communicator, local_edges: np.ndarray) -> int:
    """Total directed edge count across ranks (one allreduce)."""
    return int(comm.allreduce(len(local_edges), lambda a, b: a + b))


def distributed_degree_counts(
    comm: Communicator, local_edges: np.ndarray, n: int
) -> np.ndarray:
    """Global out-degree vector: local bincount + elementwise-sum allreduce.

    Counts loops like any other row; subtract a loop indicator for the
    paper's ``d`` if needed.
    """
    edges = np.asarray(local_edges, dtype=np.int64).reshape(-1, 2)
    local = np.bincount(edges[:, 0], minlength=n).astype(np.int64)
    return comm.allreduce(local, lambda a, b: a + b)


def distributed_degree_histogram(
    comm: Communicator, local_edges: np.ndarray, n: int
) -> np.ndarray:
    """Histogram of global degrees (index = degree).

    Requires a storage scheme under which each vertex's edges live on one
    rank is *not* assumed: degrees are first globally reduced, then
    histogrammed identically on every rank.
    """
    deg = distributed_degree_counts(comm, local_edges, n)
    return np.bincount(deg)


def distributed_max_vertex(comm: Communicator, local_edges: np.ndarray) -> int:
    """Largest vertex id observed across all ranks (-1 if no edges)."""
    edges = np.asarray(local_edges, dtype=np.int64)
    local = int(edges.max()) if edges.size else -1
    return int(comm.allreduce(local, max))

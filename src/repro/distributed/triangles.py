"""Distributed triangle counting over block-partitioned edges.

The paper's validation story runs triangle counting (Pearce [23],
Chiba-Nishizeki [22]) on the generated product and checks it against the
Kronecker formulas.  This module implements a distributed counter in the
same communication style so the full generate -> count -> validate loop can
run inside this library's SPMD runtime:

* edges are stored by **source block** (rank ``r`` owns the adjacency rows
  of its vertex range -- the layout ``storage="source_block"`` generation
  produces);
* counting edge ``(u, v)`` needs ``|N(u) cap N(v)|``; ``N(u)`` is local but
  ``N(v)`` may live on another rank, so ranks exchange *row requests* and
  *row payloads* in two all-to-all rounds (the pull pattern of distributed
  adjacency joins);
* per-edge intersections are computed locally with sorted-array
  intersections, then reduced.

The counter is exact on simple undirected graphs (self loops ignored).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import Communicator
from repro.distributed.partition import owners_by_vertex_block
from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList

__all__ = [
    "local_rows_csr",
    "fetch_remote_rows",
    "distributed_edge_triangles",
    "distributed_global_triangles",
]


def local_rows_csr(local_edges: np.ndarray, n: int) -> CSRGraph:
    """CSR over the full vertex space holding only this rank's rows."""
    el = EdgeList(np.asarray(local_edges, dtype=np.int64).reshape(-1, 2), n)
    return CSRGraph.from_edgelist(el.without_self_loops())


def fetch_remote_rows(
    comm: Communicator,
    csr: CSRGraph,
    wanted: np.ndarray,
    n: int,
) -> dict[int, np.ndarray]:
    """Pull adjacency rows of ``wanted`` vertices from their owners.

    Two collective rounds: (1) send each owner the list of vertex ids this
    rank needs; (2) owners answer with ``(id, row)`` payloads.  Locally
    owned ids are answered from ``csr`` without communication.

    Returns a dict ``vertex -> sorted neighbor array`` covering ``wanted``.
    """
    wanted = np.unique(np.asarray(wanted, dtype=np.int64))
    owners = owners_by_vertex_block(wanted, n, comm.size)
    rows: dict[int, np.ndarray] = {}

    requests: list[np.ndarray] = []
    for r in range(comm.size):
        ids = wanted[owners == r]
        if r == comm.rank:
            for v in ids:
                rows[int(v)] = csr.neighbors(int(v))
            requests.append(np.empty(0, dtype=np.int64))
        else:
            requests.append(ids)
    incoming = comm.alltoall(requests)

    replies: list[list[tuple[int, np.ndarray]]] = []
    for r, ids in enumerate(incoming):
        if r == comm.rank or ids is None:
            replies.append([])
            continue
        replies.append([(int(v), csr.neighbors(int(v))) for v in ids])
    answered = comm.alltoall(replies)

    for payload in answered:
        for v, row in payload:
            rows[v] = row
    return rows


def _intersection_sizes(
    csr: CSRGraph, edges: np.ndarray, remote: dict[int, np.ndarray]
) -> np.ndarray:
    """``|N(u) cap N(v)|`` per edge; N(u) local, N(v) from ``remote``."""
    out = np.empty(len(edges), dtype=np.int64)
    for idx, (u, v) in enumerate(edges):
        nu = csr.neighbors(int(u))
        nv = remote[int(v)]
        # sorted-array intersection via searchsorted (both rows sorted);
        # probe the smaller row into the larger one
        if len(nu) > len(nv):
            nu, nv = nv, nu
        if len(nu) == 0 or len(nv) == 0:
            out[idx] = 0
            continue
        pos = np.searchsorted(nv, nu)
        valid = pos < len(nv)
        out[idx] = int(np.count_nonzero(nv[pos[valid]] == nu[valid]))
    return out


def distributed_edge_triangles(
    comm: Communicator, local_edges: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge triangle counts for this rank's (source-block) edges.

    Parameters
    ----------
    comm:
        Communicator; every rank must call collectively.
    local_edges:
        This rank's directed rows; sources must fall in this rank's block
        range (checked), matching ``storage="source_block"`` generation.
    n:
        Global vertex count.

    Returns
    -------
    (edges, counts)
        The rank's non-loop edges and the triangle count at each --
        the distributed evaluation of Def. 6's ``Delta``.
    """
    edges = np.asarray(local_edges, dtype=np.int64).reshape(-1, 2)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if len(edges):
        owners = owners_by_vertex_block(edges[:, 0], n, comm.size)
        if np.any(owners != comm.rank):
            raise PartitionError(
                "local edges contain rows outside this rank's source block"
            )
    csr = local_rows_csr(edges, n)
    remote = fetch_remote_rows(
        comm, csr, edges[:, 1] if len(edges) else np.empty(0, dtype=np.int64), n
    )
    counts = _intersection_sizes(csr, edges, remote)
    return edges, counts


def distributed_global_triangles(
    comm: Communicator, local_edges: np.ndarray, n: int
) -> int:
    """Exact global triangle count from block-partitioned edges.

    Each triangle is counted once per directed edge it contains (6 times
    total), so the allreduced per-edge sum divides by 6.
    """
    _edges, counts = distributed_edge_triangles(comm, local_edges, n)
    total = comm.allreduce(int(counts.sum()), lambda a, b: a + b)
    if total % 6:
        raise PartitionError(
            "triangle sum not divisible by 6; edges are not a symmetric "
            "simple graph partitioned by source block"
        )
    return total // 6

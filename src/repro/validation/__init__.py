"""Formula-vs-direct validation harness."""

from repro.validation.checks import CheckResult, ALL_CHECKS
from repro.validation.streaming import StreamingValidator
from repro.validation.harness import (
    ValidationReport,
    validate_product,
    validate_algorithm,
)

__all__ = [
    "CheckResult",
    "ALL_CHECKS",
    "ValidationReport",
    "validate_product",
    "validate_algorithm",
    "StreamingValidator",
]

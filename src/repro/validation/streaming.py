"""Streaming validation: check ground truth while the product is generated.

Section V-B notes closeness "can compute ... as we build C"; more broadly,
any additively-decomposable statistic can be validated from the generation
stream without ever holding the product.  :class:`StreamingValidator`
consumes edge chunks (from :func:`repro.kronecker.product.iter_kron_product`
or a rank's pipeline) and accumulates:

* directed edge count,
* self-loop count,
* out-degree vector,
* an edge-hash fingerprint (order-independent XOR, so any permutation of
  the same multiset matches).

``finish()`` compares the accumulated statistics against the Kronecker
counting laws and returns a standard
:class:`~repro.validation.checks.CheckResult` list.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AssumptionError
from repro.graph.edgelist import EdgeList
from repro.util.hashing import hash_pair
from repro.validation.checks import CheckResult

__all__ = ["StreamingValidator"]


class StreamingValidator:
    """Accumulate product-edge chunks and validate against factor laws.

    Parameters
    ----------
    el_a, el_b:
        The factors (any self-loop regime); the expected statistics are
        derived from them up front.
    """

    def __init__(self, el_a: EdgeList, el_b: EdgeList) -> None:
        self._n = el_a.n * el_b.n
        self._expect_edges = el_a.m_directed * el_b.m_directed
        loops_a = el_a.deduplicate().num_self_loops
        loops_b = el_b.deduplicate().num_self_loops
        # duplicates in inputs multiply into the product; use deduped factors
        self._dedup_expect = (
            el_a.deduplicate().m_directed * el_b.deduplicate().m_directed
        )
        self._expect_loops = loops_a * loops_b
        da = np.bincount(el_a.deduplicate().src, minlength=el_a.n)
        db = np.bincount(el_b.deduplicate().src, minlength=el_b.n)
        self._expect_outdeg = np.kron(da, db)
        self._seen_edges = 0
        self._seen_loops = 0
        self._outdeg = np.zeros(self._n, dtype=np.int64)
        self._fingerprint = np.uint64(0)
        self._finished = False

    # ------------------------------------------------------------------ #
    def consume(self, chunk: np.ndarray) -> None:
        """Fold one ``(c, 2)`` edge chunk into the running statistics."""
        if self._finished:
            raise AssumptionError("validator already finished")
        chunk = np.asarray(chunk, dtype=np.int64).reshape(-1, 2)
        if chunk.size and int(chunk.max()) >= self._n:
            raise AssumptionError("edge endpoint outside the product range")
        self._seen_edges += len(chunk)
        self._seen_loops += int(np.count_nonzero(chunk[:, 0] == chunk[:, 1]))
        self._outdeg += np.bincount(chunk[:, 0], minlength=self._n)
        if len(chunk):
            h = hash_pair(chunk[:, 0], chunk[:, 1], seed=0, directed=True)
            self._fingerprint ^= np.bitwise_xor.reduce(h)

    def fingerprint(self) -> int:
        """Order-independent hash of everything consumed so far."""
        return int(self._fingerprint)

    # ------------------------------------------------------------------ #
    def finish(self) -> list[CheckResult]:
        """Compare accumulated statistics against the counting laws."""
        self._finished = True
        results = [
            CheckResult(
                "stream_edge_count",
                self._seen_edges == self._dedup_expect,
                f"saw {self._seen_edges}, law {self._dedup_expect}",
            ),
            CheckResult(
                "stream_self_loops",
                self._seen_loops == self._expect_loops,
                f"saw {self._seen_loops}, law {self._expect_loops}",
            ),
            CheckResult(
                "stream_out_degrees",
                bool(np.array_equal(self._outdeg, self._expect_outdeg)),
                f"max |diff| = "
                f"{int(np.abs(self._outdeg - self._expect_outdeg).max()) if self._n else 0}",
            ),
        ]
        return results

    @property
    def passed(self) -> bool:
        """``True`` iff a subsequent :meth:`finish` would report all-pass.

        Peeks without finalizing (useful for mid-stream progress checks the
        final statistics will not pass until the stream completes).
        """
        return (
            self._seen_edges == self._dedup_expect
            and self._seen_loops == self._expect_loops
            and bool(np.array_equal(self._outdeg, self._expect_outdeg))
        )

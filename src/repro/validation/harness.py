"""End-to-end validation harness.

``validate_product(A, B)`` materializes ``C = (A + I) (x) (B + I)``, runs
every registered formula-vs-direct check, and returns a
:class:`ValidationReport`.  This is the workflow an HPC-algorithm developer
follows with these graphs: generate with ground truth, run the algorithm
under test, compare.  ``validate_algorithm`` inverts the roles -- it scores a
*user-supplied* analytic implementation against the Kronecker ground truth,
the paper's motivating use case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ExperimentError
from repro.graph.edgelist import EdgeList
from repro.kronecker.operators import (
    kron_with_full_loops,
    require_no_self_loops,
    require_symmetric,
)
from repro.validation.checks import ALL_CHECKS, CheckResult

__all__ = ["ValidationReport", "validate_product", "validate_algorithm"]


@dataclass
class ValidationReport:
    """Collected check results with a pass/fail summary."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """``True`` iff every check passed."""
        return all(r.passed for r in self.results)

    def failures(self) -> list[CheckResult]:
        """The failed checks."""
        return [r for r in self.results if not r.passed]

    def to_text(self) -> str:
        """One line per check plus a summary footer."""
        lines = [str(r) for r in self.results]
        lines.append(
            f"-- {sum(r.passed for r in self.results)}/{len(self.results)} checks passed"
        )
        return "\n".join(lines)


def validate_product(
    el_a: EdgeList,
    el_b: EdgeList,
    checks: list[str] | None = None,
) -> ValidationReport:
    """Run formula-vs-direct checks on ``(A + I) (x) (B + I)``.

    Parameters
    ----------
    el_a, el_b:
        Loop-free symmetric factors (the harness adds the self loops).
    checks:
        Subset of check names from
        :data:`repro.validation.checks.ALL_CHECKS`; all by default.
        Distance checks require connected factors.
    """
    require_symmetric(el_a, "A")
    require_symmetric(el_b, "B")
    require_no_self_loops(el_a, "A")
    require_no_self_loops(el_b, "B")
    names = list(ALL_CHECKS) if checks is None else list(checks)
    unknown = [n for n in names if n not in ALL_CHECKS]
    if unknown:
        raise ExperimentError(f"unknown checks: {unknown}")
    product = kron_with_full_loops(el_a, el_b)
    report = ValidationReport()
    for name in names:
        report.results.append(ALL_CHECKS[name](el_a, el_b, product))
    return report


def validate_algorithm(
    algorithm: Callable[[EdgeList], np.ndarray],
    ground_truth: np.ndarray,
    graph: EdgeList,
    *,
    name: str = "algorithm",
    rtol: float = 0.0,
    atol: float = 0.0,
) -> CheckResult:
    """Score a user-supplied per-vertex/per-edge analytic against ground truth.

    The algorithm runs on the (large) materialized graph; ``ground_truth``
    comes from the (small) factors via :mod:`repro.groundtruth`.  Exact by
    default; pass tolerances for approximate algorithms.
    """
    got = np.asarray(algorithm(graph))
    truth = np.asarray(ground_truth)
    if got.shape != truth.shape:
        return CheckResult(
            name, False, f"shape mismatch: {got.shape} vs {truth.shape}"
        )
    if rtol == 0.0 and atol == 0.0:
        ok = bool(np.array_equal(got, truth))
        bad = int(np.sum(got != truth))
        detail = f"{bad} of {truth.size} values differ" if not ok else "exact match"
    else:
        ok = bool(np.allclose(got, truth, rtol=rtol, atol=atol))
        err = float(np.max(np.abs(got - truth))) if truth.size else 0.0
        detail = f"max |err| = {err:.3e} (rtol={rtol}, atol={atol})"
    return CheckResult(name, ok, detail)

"""Individual ground-truth-vs-direct check functions.

Each check computes one analytic both ways -- the Kronecker formula from
factor data and the trusted direct algorithm on the materialized product --
and returns a :class:`CheckResult`.  The harness composes them; tests call
them directly.  This is the paper's validation workflow packaged as a
library: "compare the results to a known trusted implementation" where the
trusted side *is* the ground-truth formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics import (
    closeness_centralities,
    degrees,
    eccentricities,
    edge_triangles,
    global_triangles,
    hop_matrix,
    vertex_triangles,
)
from repro.graph.edgelist import EdgeList
from repro.groundtruth import (
    closeness_product_histogram,
    degrees_full_loops,
    eccentricity_product_all,
    edge_count_full_loops,
    edge_triangles_full_loops,
    factor_triangle_stats,
    global_triangles_full_loops,
    vertex_count,
    vertex_triangles_full_loops,
)
from repro.kronecker.operators import kron_with_full_loops

__all__ = ["CheckResult", "ALL_CHECKS", "check_sizes", "check_degrees",
           "check_vertex_triangles", "check_edge_triangles",
           "check_global_triangles", "check_eccentricity", "check_closeness"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one formula-vs-direct comparison."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def _result(name: str, passed: bool, detail: str) -> CheckResult:
    return CheckResult(name, bool(passed), detail)


def check_sizes(el_a: EdgeList, el_b: EdgeList, product: EdgeList) -> CheckResult:
    """n and m of ``(A+I) (x) (B+I)`` vs the counting laws."""
    n_law = vertex_count(el_a.n, el_b.n)
    m_law = edge_count_full_loops(
        el_a.num_undirected_edges, el_a.n, el_b.num_undirected_edges, el_b.n
    )
    ok = n_law == product.n and m_law == product.num_undirected_edges
    return _result(
        "sizes",
        ok,
        f"n {n_law} vs {product.n}; m {m_law} vs {product.num_undirected_edges}",
    )


def check_degrees(el_a: EdgeList, el_b: EdgeList, product: EdgeList) -> CheckResult:
    """Full-loop degree law vs direct degrees."""
    law = degrees_full_loops(degrees(el_a), degrees(el_b))
    direct = degrees(product)
    ok = np.array_equal(law, direct)
    return _result("degrees", ok, f"max |diff| = {np.abs(law - direct).max() if len(law) else 0}")


def check_vertex_triangles(
    el_a: EdgeList, el_b: EdgeList, product: EdgeList
) -> CheckResult:
    """Cor. 1 vs direct per-vertex counting."""
    law = vertex_triangles_full_loops(
        factor_triangle_stats(el_a), factor_triangle_stats(el_b)
    )
    direct = vertex_triangles(product)
    ok = np.array_equal(law, direct)
    return _result(
        "vertex_triangles", ok, f"sum law={law.sum()} direct={direct.sum()}"
    )


def check_edge_triangles(
    el_a: EdgeList, el_b: EdgeList, product: EdgeList
) -> CheckResult:
    """Corrected Cor. 2 vs direct per-edge counting on all product edges."""
    edges = product.without_self_loops().edges
    law = edge_triangles_full_loops(
        factor_triangle_stats(el_a), factor_triangle_stats(el_b), edges
    )
    direct = edge_triangles(product, edges)
    ok = np.array_equal(law, direct)
    return _result(
        "edge_triangles", ok, f"{len(edges)} edges, mismatches={int(np.sum(law != direct))}"
    )


def check_global_triangles(
    el_a: EdgeList, el_b: EdgeList, product: EdgeList
) -> CheckResult:
    """Constant-storage global count vs direct."""
    law = global_triangles_full_loops(
        factor_triangle_stats(el_a), factor_triangle_stats(el_b)
    )
    direct = global_triangles(product)
    return _result("global_triangles", law == direct, f"law={law} direct={direct}")


def check_eccentricity(
    el_a: EdgeList, el_b: EdgeList, product: EdgeList
) -> CheckResult:
    """Cor. 4 vs direct eccentricities (needs connected factors)."""
    law = eccentricity_product_all(
        eccentricities(el_a.with_full_self_loops()),
        eccentricities(el_b.with_full_self_loops()),
    )
    direct = eccentricities(product)
    ok = np.array_equal(law, direct)
    return _result("eccentricity", ok, f"diam law={law.max()} direct={direct.max()}")


def check_closeness(
    el_a: EdgeList, el_b: EdgeList, product: EdgeList
) -> CheckResult:
    """Thm. 4 (histogram method) vs direct closeness at every vertex."""
    h_a = hop_matrix(el_a.with_full_self_loops())
    h_b = hop_matrix(el_b.with_full_self_loops())
    direct = closeness_centralities(product)
    n_b = el_b.n
    law = np.array(
        [
            closeness_product_histogram(h_a[p // n_b], h_b[p % n_b])
            for p in range(product.n)
        ]
    )
    ok = np.allclose(law, direct, rtol=1e-12, atol=1e-9)
    return _result(
        "closeness", ok, f"max |diff| = {np.abs(law - direct).max():.2e}"
    )


#: name -> callable(el_a, el_b, product) registry the harness iterates.
ALL_CHECKS = {
    "sizes": check_sizes,
    "degrees": check_degrees,
    "vertex_triangles": check_vertex_triangles,
    "edge_triangles": check_edge_triangles,
    "global_triangles": check_global_triangles,
    "eccentricity": check_eccentricity,
    "closeness": check_closeness,
}

"""Chrome trace-event / Perfetto JSON export and schema validation.

The export target is the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing``, Perfetto's legacy loader, and
``speedscope``.  Layout decisions:

* one **lane per rank**: all events share ``pid=1`` ("repro-kron") and
  use ``tid = rank``, with ``thread_name`` metadata events labelling
  each lane ``rank 0`` .. ``rank N-1`` and ``thread_sort_index``
  pinning lane order to rank order;
* **parent/supervisor events** (retries, degradations before launch) get
  their own lane after the ranks, labelled ``supervisor``;
* timestamps are normalized to **microseconds since the earliest event**
  across all ranks -- ranks share a clock origin (CLOCK_MONOTONIC
  survives fork), so cross-rank alignment in the viewer is real, not
  cosmetic.

:func:`validate_chrome_trace` is the schema check the CI smoke job runs
(via ``python -m repro.telemetry.validate``): it returns a list of
problems, empty when the object is loadable by the viewers above.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.telemetry.trace import TraceEvent

__all__ = ["chrome_trace", "write_chrome_trace", "validate_chrome_trace"]

#: The single Chrome "process" all rank lanes live under.
_PID = 1

_US = 1_000_000  # seconds -> microseconds


def _lane_meta(tid: int, name: str) -> list[dict[str, Any]]:
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": name},
        },
        {
            "name": "thread_sort_index",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"sort_index": tid},
        },
    ]


def _emit(event: TraceEvent, tid: int, origin: float) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": event.name,
        "ph": event.ph,
        "cat": event.cat,
        "pid": _PID,
        "tid": tid,
        "ts": (event.ts - origin) * _US,
    }
    if event.ph == "X":
        out["dur"] = event.dur * _US
    elif event.ph == "i":
        out["s"] = "t"  # instant scope: thread
    if event.args:
        out["args"] = dict(event.args)
    return out


def chrome_trace(
    rank_traces: Iterable[Any],
    parent_events: Iterable[TraceEvent] = (),
) -> dict[str, Any]:
    """Build the Chrome trace-event JSON object.

    ``rank_traces`` is an iterable of
    :class:`~repro.telemetry.session.RankTrace`; ``parent_events`` are
    supervisor-side instants rendered on their own lane.
    """
    snaps = list(rank_traces)
    parents = list(parent_events)

    all_ts = [e.ts for snap in snaps for e in snap.events]
    all_ts += [e.ts for e in parents]
    origin = min(all_ts) if all_ts else 0.0

    events: list[dict[str, Any]] = []
    max_rank = -1
    for snap in snaps:
        max_rank = max(max_rank, snap.rank)
        events.extend(_lane_meta(snap.rank, f"rank {snap.rank}"))
        events.extend(_emit(e, snap.rank, origin) for e in snap.events)
    if parents:
        sup_tid = max_rank + 1
        events.extend(_lane_meta(sup_tid, "supervisor"))
        events.extend(_emit(e, sup_tid, origin) for e in parents)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.telemetry",
            "nranks": len(snaps),
            "dropped": {
                str(snap.rank): snap.dropped for snap in snaps if snap.dropped
            },
        },
    }


def write_chrome_trace(
    path,
    rank_traces: Iterable[Any],
    parent_events: Iterable[TraceEvent] = (),
) -> None:
    """Serialize :func:`chrome_trace` output to ``path`` as JSON."""
    obj = chrome_trace(rank_traces, parent_events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, separators=(",", ":"))
        fh.write("\n")


# --------------------------------------------------------------------- #
# schema validation (used by CI and tests; no third-party validator)
# --------------------------------------------------------------------- #
_REQUIRED = ("name", "ph", "pid", "tid", "ts")
_KNOWN_PHASES = {"X", "i", "I", "M", "B", "E", "C"}


def validate_chrome_trace(obj: Any) -> list[str]:
    """Check that ``obj`` is a loadable Chrome trace; return problems.

    Validates the subset of the trace-event format this package emits --
    enough that an empty return means ``chrome://tracing`` / Perfetto
    will load the file and show one labelled lane per rank.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]

    named_lanes: set[tuple[int, int]] = set()
    event_lanes: set[tuple[int, int]] = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{i}]: not an object")
            continue
        for key in _REQUIRED:
            if key == "ts" and event.get("ph") == "M":
                continue  # metadata events carry no timestamp
            if key not in event:
                problems.append(f"traceEvents[{i}]: missing '{key}'")
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"traceEvents[{i}]: unknown phase {ph!r}")
        lane = (event.get("pid"), event.get("tid"))
        if ph == "M":
            if event.get("name") == "thread_name":
                named_lanes.add(lane)
            continue
        event_lanes.add(lane)
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"traceEvents[{i}]: non-numeric ts {ts!r}")
        elif ts < 0:
            problems.append(f"traceEvents[{i}]: negative ts {ts}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"traceEvents[{i}]: span missing 'dur'")
            elif dur < 0:
                problems.append(f"traceEvents[{i}]: negative dur {dur}")

    for lane in sorted(event_lanes - named_lanes, key=str):
        problems.append(f"lane {lane}: events but no thread_name metadata")
    return problems

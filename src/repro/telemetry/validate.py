"""Trace schema validator CLI: ``python -m repro.telemetry.validate``.

Exit status 0 when every given trace file parses as JSON and passes
:func:`repro.telemetry.export.validate_chrome_trace`; 1 otherwise, with
one problem per line on stderr.  The CI smoke job runs this against the
traces produced by ``repro-kron trace`` on both backends.

Flags:

``--require-lanes N``
    additionally require at least ``N`` named rank lanes (metadata
    ``thread_name`` events), catching exports that validate structurally
    but lost ranks.
``--require-span NAME`` (repeatable)
    require at least one complete span with this name anywhere in the
    trace (e.g. ``--require-span generate --require-span exchange``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry.export import validate_chrome_trace

__all__ = ["main"]


def _check_file(path: str, require_lanes: int, spans: list[str]) -> list[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]

    problems = [f"{path}: {p}" for p in validate_chrome_trace(obj)]
    events = obj.get("traceEvents", []) if isinstance(obj, dict) else []

    if require_lanes:
        lanes = {
            (e.get("pid"), e.get("tid"))
            for e in events
            if isinstance(e, dict)
            and e.get("ph") == "M"
            and e.get("name") == "thread_name"
            and str(e.get("args", {}).get("name", "")).startswith("rank ")
        }
        if len(lanes) < require_lanes:
            problems.append(
                f"{path}: expected >= {require_lanes} rank lanes, "
                f"found {len(lanes)}"
            )

    if spans:
        present = {
            e.get("name")
            for e in events
            if isinstance(e, dict) and e.get("ph") == "X"
        }
        for name in spans:
            if name not in present:
                problems.append(f"{path}: required span {name!r} not found")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.validate",
        description="Validate Chrome trace-event JSON produced by "
        "repro-kron trace.",
    )
    parser.add_argument("traces", nargs="+", help="trace JSON file(s)")
    parser.add_argument(
        "--require-lanes",
        type=int,
        default=0,
        metavar="N",
        help="require at least N named rank lanes",
    )
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require a complete span with this name (repeatable)",
    )
    opts = parser.parse_args(argv)

    problems: list[str] = []
    for path in opts.traces:
        problems.extend(
            _check_file(path, opts.require_lanes, opts.require_span)
        )
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(f"{len(opts.traces)} trace(s) valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

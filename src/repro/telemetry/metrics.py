"""Per-rank metrics: counters, gauges, histograms, and their merge.

A :class:`MetricsRegistry` lives on each rank and is dictionary-cheap to
update: ``add`` (monotonic counter), ``gauge`` (last-write-wins level),
``observe`` (log2-bucketed histogram).  At finalize the registry is
snapshotted into plain dicts -- picklable, so snapshots ride the process
backend's result queue -- and merged across ranks either parent-side
(:func:`merge_snapshots`) or in-world through one ``allgather``
(:func:`aggregate_snapshot`), the "existing comm layer" path.

Merge semantics: counters sum, gauges keep min/max/last-across-ranks,
histograms sum bucket-wise (identical fixed bucket layout everywhere).

The histogram buckets are powers of two over the float's binary
exponent, spanning ~1ns to ~100s for durations and 1B to ~8TB for
sizes without configuration: ``bucket = clamp(exponent + 31, 0, 63)``
where ``value = mantissa * 2**exponent``.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "MetricsRegistry",
    "merge_snapshots",
    "aggregate_snapshot",
    "HIST_BUCKETS",
]

#: Number of histogram buckets (fixed layout so merges are elementwise).
HIST_BUCKETS = 64

#: Offset added to the binary exponent: bucket 31 holds values in [1, 2).
_EXP_OFFSET = 31


def _bucket(value: float) -> int:
    """Fixed log2 bucket index of a positive value (0 for <= 0)."""
    if value <= 0.0:
        return 0
    _, exp = math.frexp(value)
    return min(HIST_BUCKETS - 1, max(0, exp + _EXP_OFFSET))


def bucket_bounds(index: int) -> tuple[float, float]:
    """The ``[lo, hi)`` value range of histogram bucket ``index``."""
    # frexp gives value in [2**(exp-1), 2**exp), so bucket index = exp+offset
    # spans [2**(index-1-offset), 2**(index-offset)).
    if index <= 0:
        return (0.0, 2.0 ** (-_EXP_OFFSET))
    if index >= HIST_BUCKETS - 1:
        return (2.0 ** (HIST_BUCKETS - 2 - _EXP_OFFSET), math.inf)
    return (2.0 ** (index - 1 - _EXP_OFFSET), 2.0 ** (index - _EXP_OFFSET))


class _Histogram:
    """Log2-bucketed histogram with sum/count/min/max."""

    __slots__ = ("counts", "total", "count", "vmin", "vmax")

    def __init__(self) -> None:
        self.counts = [0] * HIST_BUCKETS
        self.total = 0.0
        self.count = 0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.counts[_bucket(value)] += 1
        self.total += value
        self.count += 1
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def snapshot(self) -> dict[str, Any]:
        return {
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
        }


class MetricsRegistry:
    """One rank's named counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_hists")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, _Histogram] = {}

    # ---- updates (hot path: one dict op each) ---------------------------
    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = _Histogram()
        hist.observe(value)

    # ---- reads ----------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """Picklable plain-dict snapshot of everything recorded."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {k: h.snapshot() for k, h in self._hists.items()},
        }


def _merge_hist(into: dict[str, Any], snap: dict[str, Any]) -> None:
    into["counts"] = [
        a + b for a, b in zip(into["counts"], snap["counts"])
    ]
    into["sum"] += snap["sum"]
    if snap["count"]:
        if into["count"]:
            into["min"] = min(into["min"], snap["min"])
            into["max"] = max(into["max"], snap["max"])
        else:
            into["min"], into["max"] = snap["min"], snap["max"]
    into["count"] += snap["count"]


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """World-aggregate view of per-rank snapshots.

    Counters sum; gauges become ``{"min", "max", "last"}`` summaries
    (per-rank levels rarely share a meaningful sum); histograms merge
    bucket-wise.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, dict[str, float]] = {}
    hists: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            g = gauges.setdefault(
                name, {"min": value, "max": value, "last": value}
            )
            g["min"] = min(g["min"], value)
            g["max"] = max(g["max"], value)
            g["last"] = value
        for name, h in snap.get("histograms", {}).items():
            if name in hists:
                _merge_hist(hists[name], h)
            else:
                hists[name] = {
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                    "min": h["min"],
                    "max": h["max"],
                }
    return {"counters": counters, "gauges": gauges, "histograms": hists}


def aggregate_snapshot(comm, snapshot: dict[str, Any]) -> dict[str, Any]:
    """Merge this rank's snapshot with every peer's through the comm layer.

    One ``allgather`` -- executed by every rank, so it is symmetric under
    the collective-order sentinel.  Every rank returns the identical
    world-aggregate dict.  ``comm`` is any
    :class:`repro.distributed.comm.Communicator`-shaped object (duck
    typed so this module never imports the distributed package).
    """
    return merge_snapshots(comm.allgather(snapshot))

"""Observability for the SPMD runtime: tracing, metrics, profiling.

The paper's headline results are throughput and scale numbers (Section
III, Remark 1: 1-D vs 2-D partitioned generation on up to 1.57M cores);
reproducing that methodology means measuring where each rank spends its
time and moves its bytes.  This package is the runtime's observability
layer, sitting beside the static lint (:mod:`repro.lint`), the runtime
sentinel (:mod:`repro.distributed.checked`), and the fault harness
(:mod:`repro.distributed.faults`):

:mod:`~repro.telemetry.clock`
    injected clocks -- the *only* wall-clock source distributed code may
    use (enforced by the ``wall-clock`` lint rule), so determinism and
    testability survive instrumentation.
:mod:`~repro.telemetry.trace`
    a low-overhead span/event tracer with a bounded per-rank ring buffer.
:mod:`~repro.telemetry.metrics`
    counters / gauges / histograms per rank, merged across ranks at
    finalize through the existing communicator collectives.
:mod:`~repro.telemetry.instrument`
    :class:`InstrumentedCommunicator` -- wraps any communicator so every
    collective is timed and sized automatically; composes *outside* the
    sentinel and fault layers
    (``Instrumented(Checked(Faulty(base)))``).
:mod:`~repro.telemetry.session`
    the per-run :class:`TelemetrySession` handed to ``spmd_run`` /
    ``spmd_run_supervised``, per-rank sinks, the null (zero-overhead)
    telemetry, and structured degradation events.
:mod:`~repro.telemetry.export`
    Chrome trace-event / Perfetto JSON export, one lane per rank, plus
    the trace schema validator the CI smoke job runs.

Everything is off by default: without a session, rank programs see the
shared :data:`NULL_TELEMETRY` whose spans are a reused no-op context
manager -- no allocation, no communication, no clock reads.
"""

from repro.telemetry.clock import Clock, FakeClock, monotonic, perf_clock
from repro.telemetry.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.instrument import InstrumentedCommunicator, payload_nbytes
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots
from repro.telemetry.session import (
    NULL_TELEMETRY,
    RankTelemetry,
    RankTrace,
    TelemetryConfig,
    TelemetrySession,
    record_degradation,
    telemetry_of,
)
from repro.telemetry.trace import TraceEvent, Tracer

__all__ = [
    "Clock",
    "FakeClock",
    "perf_clock",
    "monotonic",
    "Tracer",
    "TraceEvent",
    "MetricsRegistry",
    "merge_snapshots",
    "InstrumentedCommunicator",
    "payload_nbytes",
    "TelemetryConfig",
    "TelemetrySession",
    "RankTelemetry",
    "RankTrace",
    "NULL_TELEMETRY",
    "telemetry_of",
    "record_degradation",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

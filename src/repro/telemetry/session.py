"""Telemetry sessions: per-run collection, per-rank sinks, null path.

Three layers:

:class:`TelemetryConfig`
    frozen, picklable description of what to collect (ships to forked
    rank processes).
:class:`RankTelemetry`
    one rank's live sink: tracer + metrics + the injected clock.  Rank
    programs reach it through :func:`telemetry_of`; when no telemetry is
    active they get the shared :data:`NULL_TELEMETRY`, whose every
    operation is a constant-time no-op (``span()`` returns one reused
    null context manager -- no allocation, no clock read, no comm).
:class:`TelemetrySession`
    the parent-side collector handed to ``spmd_run(...,
    telemetry=session)``.  The launcher wraps the rank function so each
    rank builds a sink, wraps its communicator in an
    :class:`~repro.telemetry.instrument.InstrumentedCommunicator`, runs
    the program, aggregates metrics across ranks through the comm layer,
    and ships a :class:`RankTrace` snapshot back with its result.

Degradation events
------------------
Structured fallbacks (:class:`~repro.errors.DegradationWarning` sites)
also call :func:`record_degradation`, which routes the event to the
calling thread's active sink -- or, when the degradation happens before
any rank exists (the launcher's process->thread fallback), parks it in a
bounded pending buffer drained by the next sink to register.  Degraded
runs are thereby visible in traces, not only as Python warnings.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.clock import Clock, perf_clock
from repro.telemetry.metrics import (
    MetricsRegistry,
    aggregate_snapshot,
    merge_snapshots,
)
from repro.telemetry.trace import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    TraceEvent,
    Tracer,
)

__all__ = [
    "TelemetryConfig",
    "RankTelemetry",
    "RankTrace",
    "TelemetrySession",
    "NULL_TELEMETRY",
    "telemetry_of",
    "record_degradation",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """What a telemetry session collects.

    ``clock`` must be a picklable callable (module-level function) or
    ``None`` for the perf-counter default -- the config crosses the fork
    boundary to process-backend ranks.  ``aggregate=False`` skips the
    finalize-time cross-rank allgather (for workloads where even one
    extra collective matters).
    """

    enabled: bool = True
    capacity: int = DEFAULT_CAPACITY
    clock: Clock | None = None
    aggregate: bool = True

    def resolve_clock(self) -> Clock:
        return self.clock if self.clock is not None else perf_clock


@dataclass
class RankTrace:
    """One rank's shipped-home snapshot: events + metrics."""

    rank: int
    events: list[TraceEvent] = field(default_factory=list)
    dropped: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    #: World-aggregated metrics (identical on every rank when computed).
    aggregated: dict[str, Any] | None = None


# --------------------------------------------------------------------- #
# degradation event routing
# --------------------------------------------------------------------- #
_LOCAL = threading.local()
_SINKS: list["RankTelemetry"] = []
_SINKS_LOCK = threading.Lock()
#: Degradations observed with no sink active (e.g. launcher fallback
#: before ranks exist); bounded, drained by the next sink to register.
_PENDING: deque[tuple[str, str, str]] = deque(maxlen=64)


def record_degradation(component: str, fallback: str, reason: str) -> None:
    """Record a structured degradation event into the active telemetry.

    Called next to every ``warnings.warn(DegradationWarning(...))`` site.
    Routing: the calling thread's sink if one is active (rank threads and
    forked rank processes), else the process's first active sink, else
    the pending buffer.  With telemetry disabled everywhere this is two
    attribute reads and an append to a bounded deque.
    """
    sink = getattr(_LOCAL, "sink", None)
    if sink is None:
        with _SINKS_LOCK:
            sink = _SINKS[0] if _SINKS else None
    if sink is not None:
        sink.degradation(component, fallback, reason)
    else:
        _PENDING.append((component, fallback, reason))


class RankTelemetry:
    """One rank's live telemetry sink (tracer + metrics + clock)."""

    def __init__(self, config: TelemetryConfig, rank: int) -> None:
        self.config = config
        self.rank = rank
        self.clock = config.resolve_clock()
        self.tracer = Tracer(rank, self.clock, config.capacity)
        self.metrics = MetricsRegistry()
        self._register()

    # ---- hot-path forwarding -------------------------------------------
    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, cat: str = "phase", **args: Any):
        return self.tracer.span(name, cat, **args)

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        self.tracer.instant(name, cat, **args)

    def add(self, name: str, value: float = 1) -> None:
        self.metrics.add(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def degradation(self, component: str, fallback: str, reason: str) -> None:
        """Structured fallback event: instant in the trace + a counter."""
        self.tracer.instant(
            "degradation",
            cat="degradation",
            component=component,
            fallback=fallback,
            reason=reason,
        )
        self.metrics.add("degradations")

    # ---- lifecycle ------------------------------------------------------
    def _register(self) -> None:
        _LOCAL.sink = self
        with _SINKS_LOCK:
            _SINKS.append(self)
            pending = list(_PENDING)
            _PENDING.clear()
        for component, fallback, reason in pending:
            self.degradation(component, fallback, reason)

    def close(self) -> None:
        """Detach from the degradation routing (idempotent)."""
        if getattr(_LOCAL, "sink", None) is self:
            _LOCAL.sink = None
        with _SINKS_LOCK:
            if self in _SINKS:
                _SINKS.remove(self)

    def harvest_fault_counters(self, comm) -> None:
        """Copy the fault layer's injection counters into the metrics.

        ``counters`` resolves through the wrapper stack to
        :class:`~repro.distributed.faults.FaultCounters` when a fault
        plan is armed; absent one, this is a no-op.
        """
        fc = getattr(comm, "counters", None)
        if fc is None:
            return
        for name in ("dropped", "duplicated", "delayed", "deduplicated",
                     "crashes", "disconnects", "partitions"):
            value = getattr(fc, name, 0)
            if value:
                self.metrics.add(f"faults.{name}", value)

    def harvest_sock_counters(self, comm) -> None:
        """Copy the socket layer's liveness counters into the metrics.

        ``sock_counters`` resolves through the wrapper stack to
        :class:`~repro.distributed.sockcomm.SocketCounters` on the socket
        backend; other backends have none and this is a no-op.  Only
        non-zero fields are recorded, as ``sock.<field>`` -- which is how
        reconnect/replay counts reach chaos reports and traces.
        """
        sc = getattr(comm, "sock_counters", None)
        if sc is None:
            return
        for name in ("frames_sent", "frames_received", "deduplicated",
                     "replayed", "disconnects", "reconnects",
                     "heartbeats_sent", "heartbeats_received"):
            value = getattr(sc, name, 0)
            if value:
                self.metrics.add(f"sock.{name}", value)

    def finalize(self, comm=None) -> RankTrace:
        """Snapshot this rank's telemetry; optionally world-aggregate.

        When ``comm`` spans more than one rank and the config asks for
        aggregation, one symmetric ``allgather`` merges every rank's
        metrics so each snapshot carries the world view.
        """
        if comm is not None:
            self.harvest_fault_counters(comm)
            self.harvest_sock_counters(comm)
        snapshot = self.metrics.snapshot()
        aggregated = None
        if (
            self.config.aggregate
            and comm is not None
            and comm.size > 1
        ):
            aggregated = aggregate_snapshot(comm, snapshot)
        return RankTrace(
            rank=self.rank,
            events=self.tracer.events(),
            dropped=self.tracer.dropped,
            metrics=snapshot,
            aggregated=aggregated,
        )


class _NullTelemetry:
    """The disabled path: every call is a constant-time no-op.

    ``span()`` hands back the one shared null context manager, so a rank
    program instrumented with ``with tel.span(...):`` costs a method
    call and nothing else when telemetry is off.
    """

    __slots__ = ()

    rank = -1
    enabled = False
    config = TelemetryConfig(enabled=False)

    @staticmethod
    def clock() -> float:
        return 0.0

    def span(self, name: str, cat: str = "phase", **args: Any):
        return NULL_SPAN

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        return None

    def add(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def degradation(self, component: str, fallback: str, reason: str) -> None:
        return None

    def close(self) -> None:
        return None

    def finalize(self, comm=None) -> RankTrace:
        return RankTrace(rank=-1)


#: The shared disabled sink: what ``telemetry_of`` returns when no
#: telemetry is active.
NULL_TELEMETRY = _NullTelemetry()


def telemetry_of(comm) -> Any:
    """The telemetry sink attached to a communicator stack, or the null.

    Resolves the ``telemetry`` attribute through any wrapper chain
    (wrappers delegate unknown attributes inward); plain communicators
    have none and yield :data:`NULL_TELEMETRY`.  Call once per rank
    program and keep the local -- the lookup walks the wrapper stack.
    """
    tel = getattr(comm, "telemetry", None)
    return tel if tel is not None else NULL_TELEMETRY


class _TelemetryRankFn:
    """Picklable rank-fn wrapper installing per-rank telemetry.

    The launcher substitutes this for the user's rank function when a
    session is active: each rank builds its sink, wraps its communicator
    in an :class:`~repro.telemetry.instrument.InstrumentedCommunicator`
    (outermost, above the sentinel and fault layers the launcher already
    applied), runs the program, and returns ``(result, RankTrace)`` for
    :meth:`TelemetrySession.ingest` to unzip.  Finalize -- including the
    optional cross-rank aggregation collective -- happens only on
    success; a raising rank must not start new collectives.
    """

    __slots__ = ("fn", "config")

    def __init__(self, fn, config: TelemetryConfig) -> None:
        self.fn = fn
        self.config = config

    def __call__(self, comm, *args):
        from repro.telemetry.instrument import InstrumentedCommunicator

        tel = RankTelemetry(self.config, comm.rank)
        icomm = InstrumentedCommunicator(comm, tel)
        # The socket backend emits its own spans (heartbeat ticks,
        # reconnects) once a sink is attached; other backends have no
        # bind hook and skip this.
        bind = getattr(icomm, "bind_telemetry", None)
        if bind is not None:
            bind(tel)
        try:
            result = self.fn(icomm, *args)
            return (result, tel.finalize(icomm))
        finally:
            tel.close()


class TelemetrySession:
    """Parent-side collector for one (or more) instrumented runs.

    Pass to :func:`repro.distributed.launcher.spmd_run` (or the
    supervised variant) as ``telemetry=``; after a successful run,
    ``ranks`` holds one :class:`RankTrace` per rank and ``events`` any
    parent-side instants (supervisor retries, pre-launch degradations).
    A session may be reused across attempts/runs; ``ranks`` reflects the
    last successful run.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.ranks: list[RankTrace] = []
        self.events: list[TraceEvent] = []
        self._clock = self.config.resolve_clock()

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def record(self, name: str, cat: str = "supervisor", **args: Any) -> None:
        """Parent-side instant event (rendered on the supervisor lane)."""
        self.events.append(
            TraceEvent(
                name=name,
                ph="i",
                ts=self._clock(),
                dur=0.0,
                rank=-1,
                cat=cat,
                args=args,
            )
        )

    def ingest(self, tagged_results: list) -> list:
        """Unzip ``(result, RankTrace)`` pairs from an instrumented run.

        ``None`` entries pass through unchanged: a socket launch driving
        only a subset of ranks (``local_ranks``) reports no result -- and
        no trace -- for the ranks living on other hosts.
        """
        self.ranks = [pair[1] for pair in tagged_results if pair is not None]
        return [
            None if pair is None else pair[0] for pair in tagged_results
        ]

    # ---- summaries -------------------------------------------------------
    def aggregated_metrics(self) -> dict[str, Any]:
        """World-aggregate metrics of the last run.

        Prefers the in-world aggregation (computed through the comm layer
        at finalize); falls back to a parent-side merge when it was
        skipped (single rank, ``aggregate=False``).
        """
        for snap in self.ranks:
            if snap.aggregated is not None:
                return snap.aggregated
        return merge_snapshots([snap.metrics for snap in self.ranks])

    def metrics_summary(self) -> dict[str, Any]:
        """Per-rank and aggregate metrics plus trace bookkeeping."""
        return {
            "nranks": len(self.ranks),
            "per_rank": {
                str(snap.rank): snap.metrics for snap in self.ranks
            },
            "aggregate": self.aggregated_metrics(),
            "events_dropped": {
                str(snap.rank): snap.dropped
                for snap in self.ranks
                if snap.dropped
            },
            "supervisor_events": [
                {"name": e.name, **e.args} for e in self.events
            ],
        }

    def span_totals(self) -> dict[str, dict[str, float]]:
        """Total duration and count per span name across all ranks."""
        totals: dict[str, dict[str, float]] = {}
        for snap in self.ranks:
            for event in snap.events:
                if event.ph != "X":
                    continue
                t = totals.setdefault(
                    event.name, {"seconds": 0.0, "count": 0}
                )
                t["seconds"] += event.dur
                t["count"] += 1
        return totals

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event JSON object (one lane per rank)."""
        from repro.telemetry.export import chrome_trace

        return chrome_trace(self.ranks, parent_events=self.events)

    def write_chrome_trace(self, path) -> None:
        from repro.telemetry.export import write_chrome_trace

        write_chrome_trace(path, self.ranks, parent_events=self.events)

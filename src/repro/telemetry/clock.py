"""Injected clocks: the runtime's single source of time.

Distributed code never calls ``time.time()`` / ``time.perf_counter()``
directly (the ``wall-clock`` lint rule warns on it); it either receives a
clock callable from its :class:`~repro.telemetry.session.TelemetryConfig`
or imports the named clocks here.  Centralizing time has two payoffs:

* **determinism** -- tests inject a :class:`FakeClock` and get
  bit-reproducible span timestamps, so trace exports are assertable;
* **one choke point** -- swapping the measurement clock (perf counter vs
  CLOCK_MONOTONIC vs a simulated clock for the cost model) is a config
  change, not a grep.

``perf_clock`` is the measurement default: on Linux it reads
``CLOCK_MONOTONIC``, whose origin is shared across forked processes, so
per-rank span timestamps from the process backend line up on a common
axis in the Chrome trace viewer.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "perf_clock", "wall_clock", "monotonic", "FakeClock"]

#: A clock is any zero-argument callable returning seconds as a float.
Clock = Callable[[], float]


def perf_clock() -> float:
    """Highest-resolution monotonic clock; the tracing default."""
    return time.perf_counter()


def wall_clock() -> float:
    """Epoch seconds, for artifacts that need real dates (bench metadata)."""
    return time.time()


def monotonic() -> float:
    """Monotonic seconds for deadlines and waits (never goes backwards).

    The launcher's run deadlines and liveness polls use this instead of
    calling :func:`time.monotonic` directly, keeping ``distributed/``
    clean under the ``wall-clock`` lint rule.
    """
    return time.monotonic()


class FakeClock:
    """Deterministic test clock: advances only when told to.

    ``tick`` seconds elapse on every read (so consecutive spans get
    distinct, ordered timestamps without explicit stepping), and
    :meth:`advance` jumps the clock by an exact amount.

    Examples
    --------
    >>> clk = FakeClock(start=10.0, tick=0.5)
    >>> clk(), clk()
    (10.0, 10.5)
    >>> clk.advance(100.0); clk()
    111.0
    """

    __slots__ = ("now", "tick")

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = float(start)
        self.tick = float(tick)

    def __call__(self) -> float:
        t = self.now
        self.now += self.tick
        return t

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        self.now += float(seconds)

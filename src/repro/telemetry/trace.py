"""Span/event tracer with a bounded per-rank ring buffer.

One :class:`Tracer` lives on each rank.  A *span* is a named interval
(``with tracer.span("generate"): ...``); an *instant* is a point event
(a degradation, a supervisor retry).  Completed events land in a ring
buffer of fixed capacity -- a rank that traces more than it can hold
drops the **oldest** events and counts the drops, so tracing can never
grow memory without bound on a long generation.

Timestamps come exclusively from the injected clock (see
:mod:`repro.telemetry.clock`); the tracer itself never reads the wall
clock, which keeps traces deterministic under a fake clock and the
determinism lint rules clean.

Events use Chrome trace-event phase codes (``"X"`` complete span,
``"i"`` instant) so export (:mod:`repro.telemetry.export`) is a direct
mapping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.clock import Clock, perf_clock

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]

#: Default ring capacity: 64Ki events per rank (~8 MB of event objects),
#: plenty for a traced generation while bounding a runaway span loop.
DEFAULT_CAPACITY = 1 << 16


@dataclass(frozen=True)
class TraceEvent:
    """One completed trace event.

    ``ts`` and ``dur`` are clock seconds (converted to microseconds only
    at export time); ``ph`` is the Chrome phase code (``"X"`` span,
    ``"i"`` instant); ``args`` carries structured attributes.
    """

    name: str
    ph: str
    ts: float
    dur: float
    rank: int
    cat: str = "phase"
    args: dict[str, Any] = field(default_factory=dict)


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0")

    def __init__(
        self, tracer: "Tracer", name: str, cat: str, args: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        tracer = self._tracer
        tracer._append(
            TraceEvent(
                name=self._name,
                ph="X",
                ts=self._t0,
                dur=tracer._clock() - self._t0,
                rank=tracer.rank,
                cat=self._cat,
                args=self._args,
            )
        )


class Tracer:
    """Per-rank span/instant recorder over a bounded ring buffer."""

    __slots__ = ("rank", "_clock", "_ring", "_capacity", "dropped")

    def __init__(
        self,
        rank: int = 0,
        clock: Clock | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.rank = rank
        self._clock = clock if clock is not None else perf_clock
        self._capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events evicted because the ring was full.
        self.dropped = 0

    def _append(self, event: TraceEvent) -> None:
        if len(self._ring) == self._capacity:
            self.dropped += 1
        self._ring.append(event)

    def span(self, name: str, cat: str = "phase", **args: Any) -> _Span:
        """A context manager timing one named interval."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        """Record a point event at the current clock reading."""
        self._append(
            TraceEvent(
                name=name,
                ph="i",
                ts=self._clock(),
                dur=0.0,
                rank=self.rank,
                cat=cat,
                args=args,
            )
        )

    def events(self) -> list[TraceEvent]:
        """Snapshot of the ring's contents, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class _NullSpan:
    """The shared no-op span: enter/exit do nothing, allocate nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: The singleton no-op span every disabled ``span()`` call returns.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a constant-time no-op.

    ``span`` returns the shared :data:`NULL_SPAN` instance (no per-call
    allocation), ``instant`` does nothing, and the event list is always
    empty -- the zero-overhead path tests pin these properties.
    """

    __slots__ = ()

    rank = -1
    dropped = 0

    def span(self, name: str, cat: str = "phase", **args: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        return None

    def events(self) -> list[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0


#: The singleton disabled tracer.
NULL_TRACER = NullTracer()

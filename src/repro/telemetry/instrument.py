"""``InstrumentedCommunicator``: every collective timed and sized.

Wraps any communicator (by containment, like the sentinel) so that the
rank program's communication is measured without touching a single call
site:

* each **collective** (``barrier``/``bcast``/``gather``/``allgather``/
  ``allreduce``/``scatter``/``alltoall``) becomes a ``comm``-category
  span plus ``comm.<op>.calls`` / ``comm.<op>.seconds`` counters and
  byte counters for the payloads in and out;
* **point-to-point** ``send``/``recv`` update byte/call counters only
  (no spans -- p2p is the chatty substrate collectives decompose into,
  and per-message spans would flood the ring on pipelined runs);
* everything else (``free_received_buffers``, fault ``counters``, ...)
  delegates through ``__getattr__`` so the full wrapper stack stays
  visible.

Composition order is **outermost**: the launcher builds
``Instrumented(Checked(Faulty(base)))``, so the measured time includes
sentinel fingerprint waits and injected fault delays -- which is the
point: the trace shows what the run actually experienced.  Collectives
are delegated to the *inner* object's implementations, so each user
collective is measured exactly once even though the base class would
decompose it into p2p calls.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.distributed.comm import Communicator, Request

__all__ = ["InstrumentedCommunicator", "payload_nbytes"]


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a message payload, in bytes.

    Exact for the payloads the runtime actually exchanges (numpy arrays,
    bytes, and lists/tuples of them); scalars count their machine width;
    unknown objects count zero rather than paying a serialization to
    find out.
    """
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    return 0


class _InstrumentedRequest(Request):
    """Times the *wait* phase of a nonblocking operation.

    Split-phase ops are issued under a ``comm.<op>_start`` span; the time
    the caller later blocks in ``wait()`` is recorded separately as a
    ``comm.wait`` span plus ``comm.wait.seconds`` counters, so a trace
    distinguishes "issuing the exchange" from "stalled on the network".
    Metrics are recorded once (first completion), matching the request's
    cached-result semantics; ``spanned=False`` counts without a span
    (p2p irecv -- per-message spans would flood pipelined traces).
    """

    def __init__(
        self,
        inner: Request,
        telemetry,
        bytes_counter: str,
        *,
        spanned: bool = True,
    ) -> None:
        self._inner = inner
        self._telemetry = telemetry
        self._bytes_counter = bytes_counter
        self._spanned = spanned
        self._counted = False

    def _record(self, result: Any, elapsed: float) -> None:
        if self._counted:
            return
        self._counted = True
        tel = self._telemetry
        tel.add("comm.wait.calls")
        tel.observe("comm.wait.seconds", elapsed)
        tel.add("comm.wait.seconds.total", elapsed)
        bytes_in = payload_nbytes(result)
        if bytes_in:
            tel.add(self._bytes_counter, bytes_in)

    def wait(self) -> Any:
        if self._counted:
            return self._inner.wait()
        tel = self._telemetry
        t0 = tel.clock()
        if self._spanned:
            with tel.span("comm.wait", cat="comm"):
                result = self._inner.wait()
        else:
            result = self._inner.wait()
        self._record(result, tel.clock() - t0)
        return result

    def test(self) -> bool:
        done = self._inner.test()
        if done and not self._counted:
            # Completed without blocking: zero wait time, bytes still count.
            self._record(self._inner.wait(), 0.0)
        return done


class InstrumentedCommunicator(Communicator):
    """Measure every operation of the wrapped communicator.

    ``telemetry`` is the rank's
    :class:`~repro.telemetry.session.RankTelemetry`; rank programs reach
    it through :func:`~repro.telemetry.session.telemetry_of`, which
    resolves the ``telemetry`` attribute through any wrapper stack.
    """

    def __init__(self, inner: Communicator, telemetry) -> None:
        self._inner = inner
        self.telemetry = telemetry

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def inner(self) -> Communicator:
        """The wrapped communicator."""
        return self._inner

    def __getattr__(self, name: str):
        # Delegate backend/wrapper extras (free_received_buffers, fault
        # counters, finish, ...) so instrumentation never hides surface.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    # ---- point-to-point: counters only ----------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        tel = self.telemetry
        tel.add("comm.send.calls")
        tel.add("comm.send.bytes", payload_nbytes(obj))
        self._inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        obj = self._inner.recv(source, tag)
        tel = self.telemetry
        tel.add("comm.recv.calls")
        tel.add("comm.recv.bytes", payload_nbytes(obj))
        return obj

    # ---- nonblocking p2p: counters at issue, wait timed on the request --
    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        tel = self.telemetry
        tel.add("comm.send.calls")
        tel.add("comm.send.bytes", payload_nbytes(obj))
        return self._inner.isend(obj, dest, tag)

    def irecv(self, source: int, tag: int = 0) -> Request:
        self.telemetry.add("comm.recv.calls")
        return _InstrumentedRequest(
            self._inner.irecv(source, tag),
            self.telemetry,
            "comm.recv.bytes",
            spanned=False,
        )

    # ---- collectives: span + counters, delegated to inner ---------------
    def _timed(
        self,
        op: str,
        call: Callable[[], Any],
        bytes_out: int = 0,
        size_in: Callable[[Any], int] | None = None,
    ) -> Any:
        tel = self.telemetry
        clock = tel.clock
        t0 = clock()
        with tel.span(f"comm.{op}", cat="comm"):
            result = call()
        elapsed = clock() - t0
        tel.add(f"comm.{op}.calls")
        tel.observe(f"comm.{op}.seconds", elapsed)
        tel.add(f"comm.{op}.seconds.total", elapsed)
        if bytes_out:
            tel.add(f"comm.{op}.bytes_out", bytes_out)
        if size_in is not None:
            bytes_in = size_in(result)
            if bytes_in:
                tel.add(f"comm.{op}.bytes_in", bytes_in)
        return result

    def barrier(self) -> None:
        self._timed("barrier", self._inner.barrier)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        out = payload_nbytes(obj) if self.rank == root else 0
        return self._timed(
            "bcast",
            lambda: self._inner.bcast(obj, root),
            bytes_out=out,
            size_in=payload_nbytes if self.rank != root else None,
        )

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return self._timed(
            "gather",
            lambda: self._inner.gather(obj, root),
            bytes_out=payload_nbytes(obj) if self.rank != root else 0,
            size_in=payload_nbytes if self.rank == root else None,
        )

    def allgather(self, obj: Any) -> list[Any]:
        return self._timed(
            "allgather",
            lambda: self._inner.allgather(obj),
            bytes_out=payload_nbytes(obj),
            size_in=payload_nbytes,
        )

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self._timed(
            "allreduce",
            lambda: self._inner.allreduce(obj, op),
            bytes_out=payload_nbytes(obj),
            size_in=payload_nbytes,
        )

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        out = payload_nbytes(objs) if self.rank == root else 0
        return self._timed(
            "scatter",
            lambda: self._inner.scatter(objs, root),
            bytes_out=out,
            size_in=payload_nbytes if self.rank != root else None,
        )

    def alltoall(self, objs: list[Any]) -> list[Any]:
        return self._timed(
            "alltoall",
            lambda: self._inner.alltoall(objs),
            bytes_out=payload_nbytes(objs),
            size_in=payload_nbytes,
        )

    # ---- split-phase alltoall: issue timed here, wait on the request ----
    def alltoall_start(self, objs: list[Any]) -> Request:
        request = self._timed(
            "alltoall_start", lambda: self._inner.alltoall_start(objs)
        )
        # Outgoing volume lands on the same counter as blocking alltoall
        # so ``bytes_shuffled`` aggregations see both paths uniformly.
        self.telemetry.add("comm.alltoall.bytes_out", payload_nbytes(objs))
        return _InstrumentedRequest(
            request, self.telemetry, "comm.alltoall.bytes_in"
        )

    def alltoall_finish(self, request: Request) -> list[Any]:
        if isinstance(request, _InstrumentedRequest):
            return request.wait()
        return self._inner.alltoall_finish(request)

"""``InstrumentedCommunicator``: every collective timed and sized.

Wraps any communicator (by containment, like the sentinel) so that the
rank program's communication is measured without touching a single call
site:

* each **collective** (``barrier``/``bcast``/``gather``/``allgather``/
  ``allreduce``/``scatter``/``alltoall``) becomes a ``comm``-category
  span plus ``comm.<op>.calls`` / ``comm.<op>.seconds`` counters and
  byte counters for the payloads in and out;
* **point-to-point** ``send``/``recv`` update byte/call counters only
  (no spans -- p2p is the chatty substrate collectives decompose into,
  and per-message spans would flood the ring on pipelined runs);
* everything else (``free_received_buffers``, fault ``counters``, ...)
  delegates through ``__getattr__`` so the full wrapper stack stays
  visible.

Composition order is **outermost**: the launcher builds
``Instrumented(Checked(Faulty(base)))``, so the measured time includes
sentinel fingerprint waits and injected fault delays -- which is the
point: the trace shows what the run actually experienced.  Collectives
are delegated to the *inner* object's implementations, so each user
collective is measured exactly once even though the base class would
decompose it into p2p calls.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.distributed.comm import Communicator

__all__ = ["InstrumentedCommunicator", "payload_nbytes"]


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a message payload, in bytes.

    Exact for the payloads the runtime actually exchanges (numpy arrays,
    bytes, and lists/tuples of them); scalars count their machine width;
    unknown objects count zero rather than paying a serialization to
    find out.
    """
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    return 0


class InstrumentedCommunicator(Communicator):
    """Measure every operation of the wrapped communicator.

    ``telemetry`` is the rank's
    :class:`~repro.telemetry.session.RankTelemetry`; rank programs reach
    it through :func:`~repro.telemetry.session.telemetry_of`, which
    resolves the ``telemetry`` attribute through any wrapper stack.
    """

    def __init__(self, inner: Communicator, telemetry) -> None:
        self._inner = inner
        self.telemetry = telemetry

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def inner(self) -> Communicator:
        """The wrapped communicator."""
        return self._inner

    def __getattr__(self, name: str):
        # Delegate backend/wrapper extras (free_received_buffers, fault
        # counters, finish, ...) so instrumentation never hides surface.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    # ---- point-to-point: counters only ----------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        tel = self.telemetry
        tel.add("comm.send.calls")
        tel.add("comm.send.bytes", payload_nbytes(obj))
        self._inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        obj = self._inner.recv(source, tag)
        tel = self.telemetry
        tel.add("comm.recv.calls")
        tel.add("comm.recv.bytes", payload_nbytes(obj))
        return obj

    # ---- collectives: span + counters, delegated to inner ---------------
    def _timed(
        self,
        op: str,
        call: Callable[[], Any],
        bytes_out: int = 0,
        size_in: Callable[[Any], int] | None = None,
    ) -> Any:
        tel = self.telemetry
        clock = tel.clock
        t0 = clock()
        with tel.span(f"comm.{op}", cat="comm"):
            result = call()
        elapsed = clock() - t0
        tel.add(f"comm.{op}.calls")
        tel.observe(f"comm.{op}.seconds", elapsed)
        tel.add(f"comm.{op}.seconds.total", elapsed)
        if bytes_out:
            tel.add(f"comm.{op}.bytes_out", bytes_out)
        if size_in is not None:
            bytes_in = size_in(result)
            if bytes_in:
                tel.add(f"comm.{op}.bytes_in", bytes_in)
        return result

    def barrier(self) -> None:
        self._timed("barrier", self._inner.barrier)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        out = payload_nbytes(obj) if self.rank == root else 0
        return self._timed(
            "bcast",
            lambda: self._inner.bcast(obj, root),
            bytes_out=out,
            size_in=payload_nbytes if self.rank != root else None,
        )

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return self._timed(
            "gather",
            lambda: self._inner.gather(obj, root),
            bytes_out=payload_nbytes(obj) if self.rank != root else 0,
            size_in=payload_nbytes if self.rank == root else None,
        )

    def allgather(self, obj: Any) -> list[Any]:
        return self._timed(
            "allgather",
            lambda: self._inner.allgather(obj),
            bytes_out=payload_nbytes(obj),
            size_in=payload_nbytes,
        )

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self._timed(
            "allreduce",
            lambda: self._inner.allreduce(obj, op),
            bytes_out=payload_nbytes(obj),
            size_in=payload_nbytes,
        )

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        out = payload_nbytes(objs) if self.rank == root else 0
        return self._timed(
            "scatter",
            lambda: self._inner.scatter(objs, root),
            bytes_out=out,
            size_in=payload_nbytes if self.rank != root else None,
        )

    def alltoall(self, objs: list[Any]) -> list[Any]:
        return self._timed(
            "alltoall",
            lambda: self._inner.alltoall(objs),
            bytes_out=payload_nbytes(objs),
            size_in=payload_nbytes,
        )

"""Nonstochastic Kronecker products: index maps, generation, lazy form, rejection."""

from repro.kronecker.indexing import alpha, beta, gamma, split, combine_edges
from repro.kronecker.product import (
    kron_edge_block,
    kron_product,
    iter_kron_product,
    kron_power,
    product_size,
    RoutePlanB,
    plan_route_b,
    kron_edge_block_routed,
    kron_routed_full,
    iter_kron_product_routed,
)
from repro.kronecker.operators import (
    SelfLoopRegime,
    kron_with_full_loops,
    undirected_edge_count_with_loops,
    require_no_self_loops,
    require_full_self_loops,
    require_symmetric,
)
from repro.kronecker.lazy import KroneckerGraph
from repro.kronecker.power import (
    KroneckerPowerGraph,
    kron_product_many,
    multi_split,
    multi_combine,
)
from repro.kronecker.labeled import VertexLabeling, product_labeling
from repro.kronecker.rejection import (
    RejectionFamily,
    expected_vertex_triangles,
    expected_edge_triangles,
)

__all__ = [
    "alpha",
    "beta",
    "gamma",
    "split",
    "combine_edges",
    "kron_edge_block",
    "kron_product",
    "iter_kron_product",
    "kron_power",
    "product_size",
    "RoutePlanB",
    "plan_route_b",
    "kron_edge_block_routed",
    "kron_routed_full",
    "iter_kron_product_routed",
    "SelfLoopRegime",
    "kron_with_full_loops",
    "undirected_edge_count_with_loops",
    "require_no_self_loops",
    "require_full_self_loops",
    "require_symmetric",
    "KroneckerGraph",
    "KroneckerPowerGraph",
    "kron_product_many",
    "multi_split",
    "multi_combine",
    "VertexLabeling",
    "product_labeling",
    "RejectionFamily",
    "expected_vertex_triangles",
    "expected_edge_triangles",
]

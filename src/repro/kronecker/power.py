"""Multi-factor Kronecker products ``C = A_1 (x) A_2 (x) ... (x) A_k``.

Graph500-class benchmarks are built from *iterated* Kronecker products, and
every two-factor ground-truth formula in the paper composes associatively to
``k`` factors.  This module provides the k-factor index maps (mixed-radix
positional coordinates) and a lazy :class:`KroneckerPowerGraph`, mirroring
:class:`repro.kronecker.lazy.KroneckerGraph` with factor lists.

Index convention: a product vertex ``p`` decomposes into coordinates
``(c_1, ..., c_k)`` with ``c_1`` most significant:

.. math::

    p = ((c_1 n_2 + c_2) n_3 + c_3) \\cdots

which reduces to ``gamma`` / ``alpha`` / ``beta`` for ``k = 2``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import reduce

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.kronecker.product import DEFAULT_CHUNK, iter_kron_product, kron_product

__all__ = [
    "multi_split",
    "multi_combine",
    "kron_product_many",
    "KroneckerPowerGraph",
]


def _check_factors(factors: Sequence[EdgeList]) -> list[EdgeList]:
    if len(factors) == 0:
        raise GraphFormatError("need at least one factor")
    return list(factors)


def multi_split(p: np.ndarray | int, sizes: Sequence[int]) -> list[np.ndarray]:
    """Decompose product ids into per-factor coordinates (most significant first).

    ``sizes`` are the factor vertex counts ``(n_1, ..., n_k)``.
    """
    coords: list[np.ndarray] = []
    rest = np.asarray(p, dtype=np.int64)
    for n in reversed(sizes[1:]):
        rest, c = np.divmod(rest, np.int64(n))
        coords.append(c)
    coords.append(rest)
    return coords[::-1]


def multi_combine(coords: Sequence[np.ndarray | int], sizes: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`multi_split`."""
    if len(coords) != len(sizes):
        raise GraphFormatError(
            f"{len(coords)} coordinates for {len(sizes)} factors"
        )
    out = np.asarray(coords[0], dtype=np.int64)
    for c, n in zip(coords[1:], sizes[1:]):
        out = out * np.int64(n) + np.asarray(c, dtype=np.int64)
    return out


def kron_product_many(factors: Sequence[EdgeList]) -> EdgeList:
    """Materialize the k-fold product by left-folding :func:`kron_product`.

    Associativity of the Kronecker product makes the fold order irrelevant
    to the result (up to the fixed index convention above).
    """
    factors = _check_factors(factors)
    return reduce(kron_product, factors)


class KroneckerPowerGraph:
    """Lazy k-factor product with sublinear storage.

    Generalizes :class:`~repro.kronecker.lazy.KroneckerGraph`: storage is
    the sum of factor sizes while the product has the *product* of factor
    edge counts -- the compression ratio grows with every factor.
    """

    def __init__(self, factors: Sequence[EdgeList]) -> None:
        self.factors = [f.deduplicate() for f in _check_factors(factors)]
        self.csrs = [CSRGraph.from_edgelist(f) for f in self.factors]
        self.sizes = [f.n for f in self.factors]
        self._loop_masks = [c.self_loop_mask() for c in self.csrs]

    # ------------------------------------------------------------------ #
    # global counts
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of factors."""
        return len(self.factors)

    @property
    def n(self) -> int:
        """``n_C = prod n_i``."""
        return int(np.prod([f.n for f in self.factors], dtype=object))

    @property
    def m_directed(self) -> int:
        """``|E_C| = prod |E_i|`` (directed rows)."""
        return int(np.prod([f.m_directed for f in self.factors], dtype=object))

    @property
    def num_self_loops(self) -> int:
        """Product of per-factor loop counts."""
        return int(
            np.prod([int(m.sum()) for m in self._loop_masks], dtype=object)
        )

    @property
    def num_undirected_edges(self) -> int:
        """The paper's ``m`` for the product (requires symmetric factors)."""
        return (self.m_directed - self.num_self_loops) // 2

    # ------------------------------------------------------------------ #
    # local queries
    # ------------------------------------------------------------------ #
    def split_vertex(self, p: np.ndarray | int) -> list[np.ndarray]:
        """Per-factor coordinates of product vertices."""
        return multi_split(p, self.sizes)

    def combine_vertex(self, coords: Sequence[np.ndarray | int]) -> np.ndarray:
        """Product ids from per-factor coordinates."""
        return multi_combine(coords, self.sizes)

    def has_edge(self, p: int, q: int) -> bool:
        """``C_pq = prod_i (A_i)_{c_i(p), c_i(q)}``."""
        cp = self.split_vertex(int(p))
        cq = self.split_vertex(int(q))
        return all(
            csr.has_edge(int(i), int(j))
            for csr, i, j in zip(self.csrs, cp, cq)
        )

    def degree(self, p: np.ndarray | int) -> np.ndarray:
        """Non-loop degree of product vertices (vectorized over ``p``)."""
        coords = self.split_vertex(np.asarray(p))
        dtot = np.ones_like(np.asarray(p, dtype=np.int64))
        loop = np.ones_like(dtot, dtype=bool)
        for csr, mask, c in zip(self.csrs, self._loop_masks, coords):
            dtot = dtot * csr.degrees_total()[c]
            loop &= mask[c]
        return dtot - loop.astype(np.int64)

    def degrees(self) -> np.ndarray:
        """Degree of every product vertex: iterated ``np.kron`` of factors."""
        dtot = reduce(np.kron, [c.degrees_total() for c in self.csrs])
        loops = reduce(
            np.kron, [m.astype(np.int64) for m in self._loop_masks]
        )
        return dtot - loops

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    def to_edgelist(self) -> EdgeList:
        """Materialize the full k-fold product."""
        return kron_product_many(self.factors)

    def iter_edges(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[np.ndarray]:
        """Stream the product in bounded chunks.

        The first ``k - 1`` factors are folded into an intermediate product
        (small relative to the final expansion when the last factor is
        non-trivial); the final expansion streams chunked.
        """
        if self.k == 1:
            yield self.factors[0].edges
            return
        head = kron_product_many(self.factors[:-1])
        yield from iter_kron_product(head, self.factors[-1], chunk_size)

    def __repr__(self) -> str:
        return (
            f"KroneckerPowerGraph(k={self.k}, n={self.n}, "
            f"m_directed={self.m_directed})"
        )

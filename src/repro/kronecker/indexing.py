"""Kronecker block index maps (Section II-A of the paper).

For a block-structured index space with block size ``n_B``, the paper defines
(1-based) maps ``alpha``, ``beta``, ``gamma`` between a product-graph vertex
``p`` and its factor coordinates ``(i, k)``:

.. math::

    \\alpha_n(p) = \\lfloor (p-1)/n \\rfloor + 1, \\quad
    \\beta_n(p)  = ((p-1) \\bmod n) + 1, \\quad
    \\gamma_n(x, y) = (x-1) n + y.

The library works 0-based throughout, where the maps collapse to plain
floor-division / modulo: ``alpha(p) = p // n``, ``beta(p) = p % n``,
``gamma(i, k) = i * n + k``.  The 1-based paper forms are provided with an
``_1b`` suffix for documentation parity and cross-checking.

All maps are vectorized over numpy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "alpha",
    "beta",
    "gamma",
    "split",
    "combine_edges",
    "alpha_1b",
    "beta_1b",
    "gamma_1b",
]


def alpha(p: np.ndarray | int, n: int) -> np.ndarray:
    """Block number of 0-based index ``p`` with block size ``n``: ``p // n``."""
    return np.asarray(p, dtype=np.int64) // np.int64(n)


def beta(p: np.ndarray | int, n: int) -> np.ndarray:
    """Intra-block index of 0-based ``p`` with block size ``n``: ``p % n``."""
    return np.asarray(p, dtype=np.int64) % np.int64(n)


def gamma(i: np.ndarray | int, k: np.ndarray | int, n: int) -> np.ndarray:
    """Inverse map: ``(i, k) -> i * n + k`` (0-based)."""
    return np.asarray(i, dtype=np.int64) * np.int64(n) + np.asarray(k, dtype=np.int64)


def split(p: np.ndarray | int, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(alpha(p, n), beta(p, n))`` in one call via divmod."""
    q, r = np.divmod(np.asarray(p, dtype=np.int64), np.int64(n))
    return q, r


def combine_edges(
    src_a: np.ndarray,
    dst_a: np.ndarray,
    src_b: np.ndarray,
    dst_b: np.ndarray,
    n_b: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Map factor edge pairs to product edges (Def. 1, entrywise form).

    Given aligned arrays where row ``t`` pairs factor-A edge
    ``(src_a[t], dst_a[t])`` with factor-B edge ``(src_b[t], dst_b[t])``,
    returns the product edges
    ``(gamma(src_a, src_b), gamma(dst_a, dst_b))``.
    """
    return gamma(src_a, src_b, n_b), gamma(dst_a, dst_b, n_b)


# --------------------------------------------------------------------- #
# 1-based forms exactly as printed in the paper (for cross-checking)
# --------------------------------------------------------------------- #
def alpha_1b(i: np.ndarray | int, n: int) -> np.ndarray:
    """Paper's ``alpha_n(i) = floor((i-1)/n) + 1`` on 1-based indices."""
    return (np.asarray(i, dtype=np.int64) - 1) // np.int64(n) + 1


def beta_1b(i: np.ndarray | int, n: int) -> np.ndarray:
    """Paper's ``beta_n(i) = ((i-1) % n) + 1`` on 1-based indices."""
    return (np.asarray(i, dtype=np.int64) - 1) % np.int64(n) + 1


def gamma_1b(x: np.ndarray | int, y: np.ndarray | int, n: int) -> np.ndarray:
    """Paper's ``gamma_n(x, y) = (x-1) n + y`` on 1-based indices."""
    return (np.asarray(x, dtype=np.int64) - 1) * np.int64(n) + np.asarray(
        y, dtype=np.int64
    )

"""Implicit (lazy) Kronecker product graph.

"Nonstochastic Kronecker graphs are highly compressible": the product is
fully determined by its factors, so an object holding just the two factor
adjacencies -- ``O(|E_A| + |E_B|) = O(|E_C|^{1/2})`` storage when the factors
are balanced -- can answer edge queries, neighborhoods, and degrees of the
product without ever materializing ``|E_C| = |E_A| |E_B|`` edges.  This class
is that sublinear data structure; all the ground-truth formulas in
:mod:`repro.groundtruth` produce exact analytics from the same footprint.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.kronecker.indexing import gamma, split
from repro.kronecker.product import DEFAULT_CHUNK, iter_kron_product, kron_product

__all__ = ["KroneckerGraph"]


class KroneckerGraph:
    """The product ``C = A (x) B`` represented by its factors.

    Parameters
    ----------
    factor_a, factor_b:
        Factor edge lists.  They are converted to CSR once; the product is
        never stored.

    Notes
    -----
    Memory is ``O(|E_A| + |E_B|)``; :meth:`has_edge` costs two binary
    searches; :meth:`neighbors` costs the output size; :meth:`iter_edges`
    streams the full product in bounded chunks.
    """

    def __init__(self, factor_a: EdgeList, factor_b: EdgeList) -> None:
        self._el_a = factor_a.deduplicate()
        self._el_b = factor_b.deduplicate()
        self.csr_a = CSRGraph.from_edgelist(self._el_a)
        self.csr_b = CSRGraph.from_edgelist(self._el_b)
        self.n_a = factor_a.n
        self.n_b = factor_b.n
        self._loops_a = self.csr_a.self_loop_mask()
        self._loops_b = self.csr_b.self_loop_mask()
        # Row-major edge keys per factor (src * n + dst over the sorted
        # CSR) -- globally sorted, so *batched* membership is one
        # searchsorted per factor.  Built lazily on the first batch query.
        self._keys_a: np.ndarray | None = None
        self._keys_b: np.ndarray | None = None

    @staticmethod
    def _edge_keys(csr: CSRGraph) -> np.ndarray:
        """Sorted row-major keys ``src * n + dst`` of all CSR edges."""
        src = np.repeat(
            np.arange(csr.n, dtype=np.int64), np.diff(csr.indptr)
        )
        return src * np.int64(csr.n) + csr.indices

    # ------------------------------------------------------------------ #
    # global counts (O(1) after construction)
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Vertex count ``n_C = n_A n_B``."""
        return self.n_a * self.n_b

    @property
    def m_directed(self) -> int:
        """Directed edge count ``|E_C| = |E_A| |E_B|`` (rows, loops included)."""
        return self._el_a.m_directed * self._el_b.m_directed

    @property
    def num_self_loops(self) -> int:
        """Self loops of C: one per (loop in A, loop in B) pair."""
        return int(self._loops_a.sum()) * int(self._loops_b.sum())

    @property
    def num_undirected_edges(self) -> int:
        """The paper's ``m_C`` (non-loop directed rows / 2); needs symmetry."""
        return (self.m_directed - self.num_self_loops) // 2

    # ------------------------------------------------------------------ #
    # local queries
    # ------------------------------------------------------------------ #
    def split_vertex(self, p: int | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Factor coordinates ``(i, k) = (alpha(p), beta(p))``."""
        return split(p, self.n_b)

    def combine_vertex(self, i: int | np.ndarray, k: int | np.ndarray) -> np.ndarray:
        """Product id ``gamma(i, k) = i * n_B + k``."""
        return gamma(i, k, self.n_b)

    def has_edge(self, p: int, q: int) -> bool:
        """Edge membership: ``C_pq = A_{alpha(p),alpha(q)} B_{beta(p),beta(q)}``."""
        i, k = divmod(int(p), self.n_b)
        j, l = divmod(int(q), self.n_b)
        return self.csr_a.has_edge(i, j) and self.csr_b.has_edge(k, l)

    def has_edges(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Vectorized edge membership for aligned endpoint arrays.

        ``C_pq = A_{alpha(p),alpha(q)} B_{beta(p),beta(q)}`` evaluated for
        the whole batch with two binary searches over precomputed sorted
        row-major factor edge keys -- ``O(log |E|)`` per pair, no Python
        loop.  This is the serving hot path of :mod:`repro.service`.
        """
        p = np.asarray(p, dtype=np.int64)
        q = np.asarray(q, dtype=np.int64)
        if self._keys_a is None:
            self._keys_a = self._edge_keys(self.csr_a)
            self._keys_b = self._edge_keys(self.csr_b)
        i, k = np.divmod(p, np.int64(self.n_b))
        j, l = np.divmod(q, np.int64(self.n_b))
        want_a = i * np.int64(self.n_a) + j
        want_b = k * np.int64(self.n_b) + l
        out = np.zeros(p.shape, dtype=bool)
        pos_a = np.searchsorted(self._keys_a, want_a)
        hit_a = pos_a < len(self._keys_a)
        hit_a[hit_a] = self._keys_a[pos_a[hit_a]] == want_a[hit_a]
        if not hit_a.any():
            return out
        pos_b = np.searchsorted(self._keys_b, want_b[hit_a])
        hit_b = pos_b < len(self._keys_b)
        hit_b[hit_b] = self._keys_b[pos_b[hit_b]] == want_b[hit_a][hit_b]
        out[hit_a] = hit_b
        return out

    def neighbors(self, p: int) -> np.ndarray:
        """Sorted neighbor ids of ``p`` in C (computed, not stored).

        The neighborhood is the Kronecker product of the factor
        neighborhoods: ``N_C(p) = { gamma(j, l) : j in N_A(i), l in N_B(k) }``.
        """
        i, k = divmod(int(p), self.n_b)
        na = self.csr_a.neighbors(i)
        nb = self.csr_b.neighbors(k)
        if len(na) == 0 or len(nb) == 0:
            return np.empty(0, dtype=np.int64)
        # outer sum of (na * n_b) and nb; rows already sorted => result sorted
        out = (na[:, None] * np.int64(self.n_b) + nb[None, :]).ravel()
        return out

    def degree(self, p: int | np.ndarray) -> np.ndarray:
        """Non-loop degree of product vertices (vectorized).

        Row ``p`` of C has ``dtot_A(i) * dtot_B(k)`` entries where ``dtot``
        counts loops; the product has a loop at ``p`` iff both factors have
        loops at ``(i, k)``, and the paper's degree excludes it.
        """
        i, k = self.split_vertex(np.asarray(p))
        dtot = self.csr_a.degrees_total()[i] * self.csr_b.degrees_total()[k]
        return dtot - (self._loops_a[i] & self._loops_b[k]).astype(np.int64)

    def degrees(self) -> np.ndarray:
        """Non-loop degree of **every** product vertex (length ``n_C``).

        This is the degree scaling law evaluated in one shot:
        ``d_C = dtot_A (x) dtot_B - loop indicator``.
        """
        dtot = np.kron(self.csr_a.degrees_total(), self.csr_b.degrees_total())
        loops = np.kron(
            self._loops_a.astype(np.int64), self._loops_b.astype(np.int64)
        )
        return dtot - loops

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    def iter_edges(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[np.ndarray]:
        """Stream all product edges in chunks (see :func:`iter_kron_product`)."""
        return iter_kron_product(self._el_a, self._el_b, chunk_size)

    def to_edgelist(self) -> EdgeList:
        """Materialize the full product (memory ``O(|E_C|)``; use sparingly)."""
        return kron_product(self._el_a, self._el_b)

    @property
    def factor_a(self) -> EdgeList:
        """Deduplicated factor A edge list."""
        return self._el_a

    @property
    def factor_b(self) -> EdgeList:
        """Deduplicated factor B edge list."""
        return self._el_b

    def __repr__(self) -> str:
        return (
            f"KroneckerGraph(n={self.n}, m_directed={self.m_directed}, "
            f"factors=({self.n_a}, {self.n_b}))"
        )

"""Nonstochastic Kronecker product of edge lists.

The central generation primitive: for factors ``A`` (``n_A`` vertices) and
``B`` (``n_B`` vertices), every pair of a directed edge ``(i, j)`` of A and a
directed edge ``(k, l)`` of B contributes the product edge

.. math::

    (\\gamma(i, k), \\gamma(j, l)) = (i \\cdot n_B + k,\\; j \\cdot n_B + l),

so ``|E_C| = |E_A| \\cdot |E_B|`` directed edges.  Generation is therefore an
outer product over edge rows; we vectorize it with ``repeat``/``tile`` and --
because the product can be orders of magnitude larger than either factor --
also expose a chunked streaming form that never materializes more than
``chunk_size`` product edges at once.  The distributed generator in
:mod:`repro.distributed.generator` drives exactly these kernels per rank.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.kronecker.indexing import combine_edges
from repro.util.chunking import chunk_bounds

__all__ = [
    "kron_edge_block",
    "kron_product",
    "iter_kron_product",
    "kron_power",
    "product_size",
]

#: Default number of product edges materialized per streamed chunk.
DEFAULT_CHUNK = 1 << 20


def product_size(el_a: EdgeList, el_b: EdgeList) -> tuple[int, int]:
    """Exact ``(n_C, directed-edge count)`` of ``A (x) B`` without generating it.

    This is the "ground truth from sublinear storage" counting mode used to
    report paper-scale sizes (e.g. the 40M-vertex / 1.1B-edge gnutella
    product) that are never materialized.
    """
    return el_a.n * el_b.n, el_a.m_directed * el_b.m_directed


def kron_edge_block(
    edges_a: np.ndarray, edges_b: np.ndarray, n_b: int
) -> np.ndarray:
    """Dense outer product of two directed edge blocks.

    Returns the ``(len(a) * len(b), 2)`` array of product edges, ordered with
    the A-edge index varying slowest.  This is the innermost kernel; callers
    control memory by bounding the block sizes.
    """
    ma, mb = len(edges_a), len(edges_b)
    if ma == 0 or mb == 0:
        return np.empty((0, 2), dtype=np.int64)
    src_a = np.repeat(edges_a[:, 0], mb)
    dst_a = np.repeat(edges_a[:, 1], mb)
    src_b = np.tile(edges_b[:, 0], ma)
    dst_b = np.tile(edges_b[:, 1], ma)
    src, dst = combine_edges(src_a, dst_a, src_b, dst_b, n_b)
    return np.column_stack([src, dst])


def kron_product(el_a: EdgeList, el_b: EdgeList) -> EdgeList:
    """Materialize ``C = A (x) B`` as an edge list.

    Semantics follow Def. 1 exactly: the output has one directed edge per
    (A-edge, B-edge) pair.  If both inputs are symmetric, the output is
    symmetric; self-loop structure composes as ``(i=j and k=l)``.
    """
    edges = kron_edge_block(el_a.edges, el_b.edges, el_b.n)
    return EdgeList(edges, el_a.n * el_b.n)


def iter_kron_product(
    el_a: EdgeList,
    el_b: EdgeList,
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[np.ndarray]:
    """Stream ``C = A (x) B`` in chunks of at most ``chunk_size`` edges.

    Chunking follows the natural generation order (A-edge major): each yield
    is a contiguous range of the conceptual outer-product enumeration, so
    concatenating all chunks equals :func:`kron_product`.  B is held whole
    (the paper replicates B on every processor); A rows are sliced.

    Yields
    ------
    numpy.ndarray
        ``(c, 2)`` blocks of product edges, ``c <= chunk_size``.
    """
    mb = el_b.m_directed
    if mb == 0 or el_a.m_directed == 0:
        return
    # Choose how many A-edges to expand per chunk; at least one A-edge,
    # whose full B-expansion may exceed chunk_size -- then sub-chunk it.
    a_per_chunk = max(1, chunk_size // mb)
    for a_start, a_stop in chunk_bounds(el_a.m_directed, a_per_chunk):
        block = kron_edge_block(el_a.edges[a_start:a_stop], el_b.edges, el_b.n)
        if len(block) <= chunk_size:
            yield block
        else:
            for s, t in chunk_bounds(len(block), chunk_size):
                yield block[s:t]


def kron_power(el: EdgeList, k: int) -> EdgeList:
    """Iterated product ``A (x) A (x) ... (x) A`` (``k`` factors).

    ``k = 1`` returns the input unchanged.  Mirrors the repeated-squaring
    usage of Kronecker benchmarks (the paper's ``C = A (x) A`` experiments
    are ``k = 2``).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    out = el
    for _ in range(k - 1):
        out = kron_product(out, el)
    return out

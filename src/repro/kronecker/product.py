"""Nonstochastic Kronecker product of edge lists.

The central generation primitive: for factors ``A`` (``n_A`` vertices) and
``B`` (``n_B`` vertices), every pair of a directed edge ``(i, j)`` of A and a
directed edge ``(k, l)`` of B contributes the product edge

.. math::

    (\\gamma(i, k), \\gamma(j, l)) = (i \\cdot n_B + k,\\; j \\cdot n_B + l),

so ``|E_C| = |E_A| \\cdot |E_B|`` directed edges.  Generation is therefore an
outer product over edge rows; we vectorize it with ``repeat``/``tile`` and --
because the product can be orders of magnitude larger than either factor --
also expose a chunked streaming form that never materializes more than
``chunk_size`` product edges at once.  The distributed generator in
:mod:`repro.distributed.generator` drives exactly these kernels per rank.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.kronecker.indexing import combine_edges
from repro.util.chunking import chunk_bounds

__all__ = [
    "kron_edge_block",
    "kron_product",
    "iter_kron_product",
    "kron_power",
    "product_size",
    "RoutePlanB",
    "plan_route_b",
    "kron_edge_block_routed",
    "kron_routed_full",
    "iter_kron_product_routed",
    "routed_chunk_count",
]

#: Default number of product edges materialized per streamed chunk.
DEFAULT_CHUNK = 1 << 20


def product_size(el_a: EdgeList, el_b: EdgeList) -> tuple[int, int]:
    """Exact ``(n_C, directed-edge count)`` of ``A (x) B`` without generating it.

    This is the "ground truth from sublinear storage" counting mode used to
    report paper-scale sizes (e.g. the 40M-vertex / 1.1B-edge gnutella
    product) that are never materialized.
    """
    return el_a.n * el_b.n, el_a.m_directed * el_b.m_directed


def kron_edge_block(
    edges_a: np.ndarray, edges_b: np.ndarray, n_b: int
) -> np.ndarray:
    """Dense outer product of two directed edge blocks.

    Returns the ``(len(a) * len(b), 2)`` array of product edges, ordered with
    the A-edge index varying slowest.  This is the innermost kernel; callers
    control memory by bounding the block sizes.
    """
    ma, mb = len(edges_a), len(edges_b)
    if ma == 0 or mb == 0:
        return np.empty((0, 2), dtype=np.int64)
    src_a = np.repeat(edges_a[:, 0], mb)
    dst_a = np.repeat(edges_a[:, 1], mb)
    src_b = np.tile(edges_b[:, 0], ma)
    dst_b = np.tile(edges_b[:, 1], ma)
    src, dst = combine_edges(src_a, dst_a, src_b, dst_b, n_b)
    return np.column_stack([src, dst])


def kron_product(el_a: EdgeList, el_b: EdgeList) -> EdgeList:
    """Materialize ``C = A (x) B`` as an edge list.

    Semantics follow Def. 1 exactly: the output has one directed edge per
    (A-edge, B-edge) pair.  If both inputs are symmetric, the output is
    symmetric; self-loop structure composes as ``(i=j and k=l)``.
    """
    edges = kron_edge_block(el_a.edges, el_b.edges, el_b.n)
    return EdgeList(edges, el_a.n * el_b.n)


def iter_kron_product(
    el_a: EdgeList,
    el_b: EdgeList,
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[np.ndarray]:
    """Stream ``C = A (x) B`` in chunks of at most ``chunk_size`` edges.

    Chunking follows the natural generation order (A-edge major): each yield
    is a contiguous range of the conceptual outer-product enumeration, so
    concatenating all chunks equals :func:`kron_product`.  B is held whole
    (the paper replicates B on every processor); A rows are sliced.

    Yields
    ------
    numpy.ndarray
        ``(c, 2)`` blocks of product edges, ``c <= chunk_size``.
    """
    mb = el_b.m_directed
    if mb == 0 or el_a.m_directed == 0:
        return
    # Choose how many A-edges to expand per chunk; at least one A-edge,
    # whose full B-expansion may exceed chunk_size -- then sub-chunk it.
    a_per_chunk = max(1, chunk_size // mb)
    for a_start, a_stop in chunk_bounds(el_a.m_directed, a_per_chunk):
        block = kron_edge_block(el_a.edges[a_start:a_stop], el_b.edges, el_b.n)
        if len(block) <= chunk_size:
            yield block
        else:
            for s, t in chunk_bounds(len(block), chunk_size):
                yield block[s:t]


# --------------------------------------------------------------------- #
# Fused generation -> routing (the Section III hot path)
# --------------------------------------------------------------------- #
#
# Under the ``source_block`` storage map the owner of a product edge depends
# only on its source ``src = i * n_B + k`` (A-edge source ``i``, B-edge
# source ``k``): owner boundaries are vertex ranges, so for a *fixed* A-edge
# the owner is monotone in ``k``.  Sorting B's edge sources once (B is
# replicated and tiny; the sort is amortized across every expansion that
# reuses the plan) turns per-pair owner assignment into ``nparts``
# searchsorted boundaries per A-edge -- each owner's slice of the product is
# then written directly, with no product-sized sort of any kind.


@dataclass(frozen=True)
class RoutePlanB:
    """Reusable routing precomputation for a replicated factor B.

    Attributes
    ----------
    order:
        Stable argsort of B's edge sources (``(m_B,)`` int64).
    src_sorted:
        ``edges_b[order, 0]`` -- B-edge sources in ascending order.
    """

    order: np.ndarray
    src_sorted: np.ndarray


def plan_route_b(edges_b: np.ndarray) -> RoutePlanB:
    """Build the per-factor routing plan (one small sort of ``m_B`` keys)."""
    edges_b = np.asarray(edges_b, dtype=np.int64).reshape(-1, 2)
    order = np.argsort(edges_b[:, 0], kind="stable")
    return RoutePlanB(order, edges_b[order, 0])


def _routed_positions(
    src_a: np.ndarray, plan: RoutePlanB, n_b: int, bounds: np.ndarray
) -> np.ndarray:
    """Per-(A-edge, owner) bucket boundaries into the sorted B order.

    ``pos[t, d]`` is the first sorted-B position whose pair with A-edge ``t``
    lands in owner ``d`` or later: the pair ``(t, s)`` has product source
    ``src_a[t] * n_b + src_sorted[s]``, owned by ``d`` iff that value falls
    in ``[bounds[d], bounds[d+1])``.
    """
    thresholds = bounds[None, :] - src_a[:, None] * np.int64(n_b)
    pos = np.searchsorted(plan.src_sorted, thresholds.ravel(), side="left")
    return pos.reshape(len(src_a), len(bounds))


def _routed_bucket_rows(
    edges_a: np.ndarray,
    edges_b: np.ndarray,
    plan: RoutePlanB,
    pos: np.ndarray,
    d: int,
    n_b: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Materialize owner ``d``'s slice of the A-block x B product.

    The slice is the concatenation, A-edge major, of each A-edge's run of
    sorted-B partners ``pos[t, d] <= s < pos[t, d+1]``; the run members are
    enumerated with the same repeat/arange gather the BFS kernel uses.
    Writes into ``out`` when given (exact preallocation), else allocates.
    """
    lens = pos[:, d + 1] - pos[:, d]
    total = int(lens.sum())
    if out is None:
        out = np.empty((total, 2), dtype=np.int64)
    if total == 0:
        return out
    a_idx = np.repeat(np.arange(len(edges_a), dtype=np.int64), lens)
    intra = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    b_idx = plan.order[np.repeat(pos[:, d], lens) + intra]
    np.multiply(edges_a[a_idx, 0], np.int64(n_b), out=out[:, 0])
    out[:, 0] += edges_b[b_idx, 0]
    np.multiply(edges_a[a_idx, 1], np.int64(n_b), out=out[:, 1])
    out[:, 1] += edges_b[b_idx, 1]
    return out


def kron_edge_block_routed(
    edges_a: np.ndarray,
    edges_b: np.ndarray,
    n_b: int,
    nparts: int,
    n_c: int,
    plan: RoutePlanB | None = None,
) -> list[np.ndarray]:
    """Outer product of two edge blocks, emitted pre-bucketed by owner.

    Routed counterpart of :func:`kron_edge_block` for the ``source_block``
    storage map over ``nparts`` owners of the ``n_c``-vertex product: returns
    ``nparts`` blocks whose concatenation is a permutation of the dense
    expansion, with block ``d`` holding exactly the pairs whose product
    source falls in owner ``d``'s vertex range.  Cost is
    O(output + len(a) * nparts); no product-sized sort is performed.

    Pass a precomputed ``plan`` (:func:`plan_route_b`) to amortize B's one
    small sort across many expansions of the same replicated factor.
    """
    from repro.distributed.partition import vertex_block_bounds

    ma, mb = len(edges_a), len(edges_b)
    if ma == 0 or mb == 0:
        return [np.empty((0, 2), dtype=np.int64) for _ in range(nparts)]
    edges_a = np.asarray(edges_a, dtype=np.int64).reshape(-1, 2)
    edges_b = np.asarray(edges_b, dtype=np.int64).reshape(-1, 2)
    if plan is None:
        plan = plan_route_b(edges_b)
    bounds = vertex_block_bounds(n_c, nparts)
    pos = _routed_positions(edges_a[:, 0], plan, n_b, bounds)
    return [
        _routed_bucket_rows(edges_a, edges_b, plan, pos, d, n_b)
        for d in range(nparts)
    ]


def kron_routed_full(
    el_a: EdgeList,
    el_b: EdgeList,
    nparts: int,
    n_c: int,
    chunk_size: int = DEFAULT_CHUNK,
) -> list[np.ndarray]:
    """Full routed product ``A (x) B``: exact-size per-owner arrays.

    Equivalent to concatenating every chunk of
    :func:`iter_kron_product_routed`, but each owner's total is computed
    analytically up front so its array is allocated exactly once and filled
    in place chunk by chunk -- no per-owner concatenation, no resize.
    """
    from repro.distributed.partition import vertex_block_bounds

    ma, mb = el_a.m_directed, el_b.m_directed
    if ma == 0 or mb == 0:
        return [np.empty((0, 2), dtype=np.int64) for _ in range(nparts)]
    plan = plan_route_b(el_b.edges)
    bounds = vertex_block_bounds(n_c, nparts)
    pos = _routed_positions(el_a.edges[:, 0], plan, n_b=el_b.n, bounds=bounds)
    totals = (pos[:, 1:] - pos[:, :-1]).sum(axis=0)
    outs = [np.empty((int(t), 2), dtype=np.int64) for t in totals]
    fill = np.zeros(nparts, dtype=np.int64)
    a_per_chunk = max(1, chunk_size // mb)
    for a_start, a_stop in chunk_bounds(ma, a_per_chunk):
        pos_c = pos[a_start:a_stop]
        for d in range(nparts):
            c = int((pos_c[:, d + 1] - pos_c[:, d]).sum())
            if c == 0:
                continue
            _routed_bucket_rows(
                el_a.edges[a_start:a_stop],
                el_b.edges,
                plan,
                pos_c,
                d,
                el_b.n,
                out=outs[d][fill[d] : fill[d] + c],
            )
            fill[d] += c
    return outs


def iter_kron_product_routed(
    el_a: EdgeList,
    el_b: EdgeList,
    nparts: int,
    n_c: int,
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[list[np.ndarray]]:
    """Stream the routed product: one per-owner bucket list per A-chunk.

    Each yield covers ``max(1, chunk_size // m_B)`` A-edges' full expansion,
    split by owner; chunks therefore hold at most ``max(chunk_size, m_B)``
    edges (a single A-edge's expansion is never split, unlike
    :func:`iter_kron_product`, because routing operates on whole B).  The
    pipelined generator exchanges each yield immediately -- the paper's
    send-as-you-generate shape with the bucketing cost fused away.
    """
    ma, mb = el_a.m_directed, el_b.m_directed
    if ma == 0 or mb == 0:
        return
    plan = plan_route_b(el_b.edges)
    a_per_chunk = max(1, chunk_size // mb)
    for a_start, a_stop in chunk_bounds(ma, a_per_chunk):
        yield kron_edge_block_routed(
            el_a.edges[a_start:a_stop], el_b.edges, el_b.n, nparts, n_c, plan
        )


def routed_chunk_count(ma: int, mb: int, chunk_size: int) -> int:
    """Number of chunks :func:`iter_kron_product_routed` emits."""
    if ma == 0 or mb == 0:
        return 0
    return -(-ma // max(1, chunk_size // mb))


def kron_power(el: EdgeList, k: int) -> EdgeList:
    """Iterated product ``A (x) A (x) ... (x) A`` (``k`` factors).

    ``k = 1`` returns the input unchanged.  Mirrors the repeated-squaring
    usage of Kronecker benchmarks (the paper's ``C = A (x) A`` experiments
    are ``k = 2``).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    out = el
    for _ in range(k - 1):
        out = kron_product(out, el)
    return out

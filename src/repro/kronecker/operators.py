"""Self-loop regimes and notation-level helpers.

The paper's theorems each assume a specific self-loop regime:

* ``NO_LOOPS`` -- ``A o I_A = O_A`` (Thm. 1/2, the no-loop triangle laws);
* ``FULL_LOOPS`` -- ``A o I_A = I_A`` (the distance results of Section V and
  the ``(A + I) (x) (B + I)`` triangle/community results of Cor. 1/2, Thm. 6).

This module names those regimes, checks them, and provides the composite
product ``(A + I_A) (x) (B + I_B)`` that most ground-truth formulas are
stated against, together with exact edge-count accounting for each regime.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import AssumptionError
from repro.graph.edgelist import EdgeList
from repro.kronecker.product import kron_product

__all__ = [
    "SelfLoopRegime",
    "require_no_self_loops",
    "require_full_self_loops",
    "require_symmetric",
    "kron_with_full_loops",
    "directed_edge_count_with_loops",
    "undirected_edge_count_with_loops",
]


class SelfLoopRegime(Enum):
    """Which self-loop hypothesis a formula assumes."""

    NO_LOOPS = "no_loops"
    FULL_LOOPS = "full_loops"
    ANY = "any"


def require_no_self_loops(el: EdgeList, name: str = "factor") -> None:
    """Raise :class:`AssumptionError` unless ``D = O`` (no self loops)."""
    if not el.has_no_self_loops():
        raise AssumptionError(
            f"{name} must have no self loops (A o I = O); found "
            f"{el.num_self_loops} loop(s)"
        )


def require_full_self_loops(el: EdgeList, name: str = "factor") -> None:
    """Raise :class:`AssumptionError` unless ``D = I`` (loops everywhere)."""
    if not el.has_full_self_loops():
        raise AssumptionError(
            f"{name} must have a self loop on every vertex (A o I = I)"
        )


def require_symmetric(el: EdgeList, name: str = "factor") -> None:
    """Raise :class:`AssumptionError` unless the edge list is symmetric."""
    if not el.is_symmetric():
        raise AssumptionError(f"{name} must be undirected (symmetric edge list)")


def kron_with_full_loops(el_a: EdgeList, el_b: EdgeList) -> EdgeList:
    """The paper's ``C = (A + I_A) (x) (B + I_B)``.

    Inputs may or may not already carry loops; loops are normalized to
    "full" on both factors before taking the product.  The result has full
    self loops by construction (``gamma(i, i)`` diagonal).
    """
    return kron_product(el_a.with_full_self_loops(), el_b.with_full_self_loops())


def directed_edge_count_with_loops(el: EdgeList) -> int:
    """Directed row count of ``A + I_A`` without materializing it."""
    return el.without_self_loops().m_directed + el.n


def undirected_edge_count_with_loops(el_a: EdgeList, el_b: EdgeList) -> int:
    """Exact non-loop undirected edge count of ``(A+I) (x) (B+I)``.

    Derivation: the product's directed rows number
    ``(2 m_A + n_A)(2 m_B + n_B)``, of which exactly ``n_A n_B`` are the
    product's self loops; halving the rest gives

    .. math::

        m_C = 2 m_A m_B + m_A n_B + n_A m_B.

    Both inputs are interpreted as loop-free undirected factors
    (loops stripped before counting).
    """
    a = el_a.without_self_loops()
    b = el_b.without_self_loops()
    m_a, m_b = a.num_undirected_edges, b.num_undirected_edges
    return 2 * m_a * m_b + m_a * el_b.n + el_a.n * m_b

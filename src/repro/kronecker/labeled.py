"""Vertex-labeled Kronecker graphs.

The authors' prior work [11] extends the triangle ground-truth program "to
the many types of directed graphs and labeled graphs"; the present paper
inherits that framing.  We implement the labeled-substrate layer: factors
carry categorical vertex labels, and product vertices inherit the *pair*
of their coordinates' labels,

.. math::

    L_C(p) = (L_A(\\alpha(p)),\\; L_B(\\beta(p))),

encoded as the scalar ``L_A * num_labels_B + L_B``.  Every label-class
statistic then composes multiplicatively -- see
:mod:`repro.groundtruth.labeled`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.kronecker.indexing import split

__all__ = ["VertexLabeling", "product_labeling"]


@dataclass(frozen=True)
class VertexLabeling:
    """Categorical labels over vertices ``0..n-1``.

    Parameters
    ----------
    labels:
        Length-``n`` int array with values in ``0..num_labels-1``.
    num_labels:
        Size of the label alphabet; inferred as ``max + 1`` when omitted.
    """

    labels: np.ndarray
    num_labels: int

    def __init__(self, labels: np.ndarray, num_labels: int | None = None) -> None:
        arr = np.asarray(labels, dtype=np.int64)
        if arr.ndim != 1:
            raise GraphFormatError(f"labels must be 1-D, got shape {arr.shape}")
        if arr.size and arr.min() < 0:
            raise GraphFormatError("labels must be non-negative")
        inferred = int(arr.max()) + 1 if arr.size else 0
        if num_labels is None:
            num_labels = inferred
        elif num_labels < inferred:
            raise GraphFormatError(
                f"num_labels={num_labels} below observed max label {inferred - 1}"
            )
        object.__setattr__(self, "labels", arr)
        object.__setattr__(self, "num_labels", int(num_labels))

    @property
    def n(self) -> int:
        """Number of labeled vertices."""
        return len(self.labels)

    def class_counts(self) -> np.ndarray:
        """Vertices per label (length ``num_labels``)."""
        return np.bincount(self.labels, minlength=self.num_labels).astype(np.int64)

    def members(self, label: int) -> np.ndarray:
        """Vertex ids carrying ``label``."""
        return np.nonzero(self.labels == label)[0]


def product_labeling(
    lab_a: VertexLabeling, lab_b: VertexLabeling
) -> VertexLabeling:
    """The induced labeling of ``A (x) B``: pair labels, scalar-encoded.

    Product vertex ``p = gamma(i, k)`` gets label
    ``L_A(i) * num_labels_B + L_B(k)``; the alphabet has
    ``num_labels_A * num_labels_B`` symbols, and decoding is
    ``divmod(label, num_labels_B)``.
    """
    la = np.repeat(lab_a.labels, lab_b.n)
    lb = np.tile(lab_b.labels, lab_a.n)
    return VertexLabeling(
        la * np.int64(lab_b.num_labels) + lb,
        lab_a.num_labels * lab_b.num_labels,
    )

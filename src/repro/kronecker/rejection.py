"""Probabilistic edge rejection (Section IV-C, Def. 8).

Pure Kronecker products have artifacts (no large prime degrees, distribution
holes, excessive ties) and their structure can be exploited -- accidentally
or not -- by benchmarked algorithms.  The paper's mitigation keeps ground
truth *computable* while breaking the exact product structure: fix a hash
``hash(p, q) -> [0, 1]`` and keep edge ``(p, q)`` in the subgraph
``G_{C, nu}`` iff ``hash(p, q) <= nu``.

Because the hash is deterministic, one pass generates the whole family
``{G_{C, nu_1}, ..., G_{C, nu_s}}`` jointly, and a triangle ``(p1, p2, p3)``
of ``G_C`` survives in ``G_{C, nu}`` iff the max of its three edge hashes is
``<= nu``; expectations are ``nu**3 t_p`` per vertex and ``nu**2 Delta_pq``
per edge.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.kronecker.lazy import KroneckerGraph
from repro.util.hashing import EdgeHasher
from repro.util.validation import check_probability

__all__ = ["RejectionFamily", "expected_vertex_triangles", "expected_edge_triangles"]


def expected_vertex_triangles(t_full: np.ndarray, nu: float) -> np.ndarray:
    """Expected per-vertex triangle counts in ``G_{C,nu}``: ``nu**3 * t_p``."""
    nu = check_probability(nu, "nu")
    return nu**3 * np.asarray(t_full, dtype=np.float64)


def expected_edge_triangles(delta_full: np.ndarray, nu: float) -> np.ndarray:
    """Expected per-edge triangle counts in ``G_{C,nu}``: ``nu**2 * Delta_pq``."""
    nu = check_probability(nu, "nu")
    return nu**2 * np.asarray(delta_full, dtype=np.float64)


class RejectionFamily:
    """The parameterized subgraph family ``{G_{C, nu}}`` of Def. 8.

    Parameters
    ----------
    graph:
        The full graph, as either a materialized :class:`EdgeList` or a lazy
        :class:`KroneckerGraph` (streamed without materialization).
    seed:
        Hash-stream seed.  Different seeds give independent families, which
        is how the statistical tests average over hash randomness.
    directed:
        If ``False`` (default), ``(p, q)`` and ``(q, p)`` share one hash so
        the subgraph of a symmetric graph stays symmetric.
    """

    def __init__(
        self,
        graph: EdgeList | KroneckerGraph,
        seed: int = 0,
        *,
        directed: bool = False,
    ) -> None:
        self._graph = graph
        self.hasher = EdgeHasher(seed, directed=directed)

    # ------------------------------------------------------------------ #
    # per-edge machinery
    # ------------------------------------------------------------------ #
    def edge_hashes(self, edges: np.ndarray) -> np.ndarray:
        """Deterministic uniforms for the given ``(m, 2)`` edge block."""
        return self.hasher.uniform(edges[:, 0], edges[:, 1])

    def survives(self, edges: np.ndarray, nu: float) -> np.ndarray:
        """Boolean survival mask of an edge block at threshold ``nu``."""
        nu = check_probability(nu, "nu")
        return self.edge_hashes(edges) <= nu

    # ------------------------------------------------------------------ #
    # subgraph generation
    # ------------------------------------------------------------------ #
    def _iter_blocks(self) -> Iterator[np.ndarray]:
        if isinstance(self._graph, KroneckerGraph):
            yield from self._graph.iter_edges()
        else:
            yield self._graph.edges

    @property
    def n(self) -> int:
        """Vertex count of the underlying full graph."""
        return self._graph.n

    def subgraph(self, nu: float) -> EdgeList:
        """Materialize ``G_{C, nu}`` as an edge list."""
        nu = check_probability(nu, "nu")
        kept = [blk[self.survives(blk, nu)] for blk in self._iter_blocks()]
        edges = (
            np.vstack(kept) if kept else np.empty((0, 2), dtype=np.int64)
        )
        return EdgeList(edges, self.n)

    def subgraph_family(self, nus: list[float]) -> dict[float, EdgeList]:
        """Jointly materialize ``G_{C, nu}`` for several thresholds.

        Each edge is hashed exactly once; an edge surviving the largest
        threshold is tested against all of them, matching the paper's
        "storing the hash values of every edge" joint-generation scheme.
        """
        nus = sorted({check_probability(v, "nu") for v in nus}, reverse=True)
        if not nus:
            return {}
        top = nus[0]
        kept_edges: list[np.ndarray] = []
        kept_hashes: list[np.ndarray] = []
        for blk in self._iter_blocks():
            h = self.edge_hashes(blk)
            mask = h <= top
            kept_edges.append(blk[mask])
            kept_hashes.append(h[mask])
        edges = (
            np.vstack(kept_edges) if kept_edges else np.empty((0, 2), dtype=np.int64)
        )
        hashes = (
            np.concatenate(kept_hashes)
            if kept_hashes
            else np.empty(0, dtype=np.float64)
        )
        return {
            nu: EdgeList(edges[hashes <= nu], self.n) for nu in nus
        }

    # ------------------------------------------------------------------ #
    # triangle survival (the joint-enumeration rule of Def. 8)
    # ------------------------------------------------------------------ #
    def triangle_survival_threshold(
        self, p1: np.ndarray, p2: np.ndarray, p3: np.ndarray
    ) -> np.ndarray:
        """Largest hash among a triangle's three edges (vectorized).

        Triangle ``(p1, p2, p3)`` of ``G_C`` exists in ``G_{C, nu}`` iff this
        value is ``<= nu``; computing it once per triangle lets one
        enumeration of ``G_C``'s triangles count triangles of every family
        member simultaneously.
        """
        h12 = self.hasher.uniform(p1, p2)
        h13 = self.hasher.uniform(p1, p3)
        h23 = self.hasher.uniform(p2, p3)
        return np.maximum(np.maximum(h12, h13), h23)

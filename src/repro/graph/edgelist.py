"""Edge-list representation of graphs.

The paper's generator consumes factors "given as (unordered) edge lists" and
emits the product as an edge stream, so the edge list is the library's
fundamental exchange format.  :class:`EdgeList` wraps an ``(m, 2)`` ``int64``
array plus a vertex count and provides the normalizations every other layer
relies on: symmetrization, deduplication, self-loop surgery, and canonical
ordering.

Conventions
-----------
* Vertex ids are 0-based (the paper's algebra is 1-based; the translation is
  confined to :mod:`repro.kronecker.indexing`).
* An *undirected* graph is stored with **both** directions of every non-loop
  edge present; ``EdgeList.is_symmetric()`` checks this invariant.
* ``num_undirected_edges`` is the paper's ``m``: non-loop directed edges / 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.util.validation import check_edge_array, check_square_ids

__all__ = ["EdgeList"]


# Largest n for which the scalar row key src * n + dst fits in int64.
_MAX_KEYABLE_N = 3_037_000_499


def _row_keys(edges: np.ndarray, n: int) -> np.ndarray | None:
    """Scalar sort keys ``src * n + dst``, or None when they would overflow.

    Sorting one int64 key per row is several times faster than
    ``np.unique(axis=0)`` / lexsort on two columns, which matters when
    normalizing multi-million-row product edge lists.
    """
    if 0 < n <= _MAX_KEYABLE_N:
        return edges[:, 0] * np.int64(n) + edges[:, 1]
    return None


def _canonical_order(edges: np.ndarray, n: int = 0) -> np.ndarray:
    """Return ``edges`` sorted lexicographically by (src, dst)."""
    if len(edges) == 0:
        return edges
    keys = _row_keys(edges, n)
    if keys is not None:
        return edges[np.argsort(keys, kind="stable")]
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


def _sorted_unique(edges: np.ndarray, n: int) -> np.ndarray:
    """Canonically ordered edges with duplicate rows removed."""
    if len(edges) == 0:
        return edges
    keys = _row_keys(edges, n)
    if keys is None:
        return np.unique(edges, axis=0)
    keys = np.sort(keys)
    keep = np.empty(len(keys), dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    uniq = keys[keep]
    out = np.empty((len(uniq), 2), dtype=np.int64)
    np.floor_divide(uniq, n, out=out[:, 0])
    np.remainder(uniq, n, out=out[:, 1])
    return out


@dataclass(frozen=True)
class EdgeList:
    """An immutable list of directed edges over vertices ``0..n-1``.

    Parameters
    ----------
    edges:
        ``(m, 2)`` integer array of ``(src, dst)`` pairs.  Duplicates are
        permitted at construction; use :meth:`deduplicate` to remove them.
    n:
        Number of vertices.  If ``None``, inferred as ``max id + 1``
        (0 for an empty list).

    Notes
    -----
    Instances are frozen; every transformation returns a new ``EdgeList``.
    The underlying array is not defensively copied -- callers must not
    mutate it after handing it over.
    """

    edges: np.ndarray
    n: int

    def __init__(self, edges: np.ndarray, n: int | None = None) -> None:
        arr = check_edge_array(edges)
        if n is None:
            n = int(arr.max()) + 1 if arr.size else 0
        else:
            n = int(n)
            if n < 0:
                raise GraphFormatError(f"n must be >= 0, got {n}")
            check_square_ids(arr, n)
        object.__setattr__(self, "edges", arr)
        object.__setattr__(self, "n", n)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def m_directed(self) -> int:
        """Number of stored directed edges (rows), loops included."""
        return len(self.edges)

    @property
    def src(self) -> np.ndarray:
        """Source column (view)."""
        return self.edges[:, 0]

    @property
    def dst(self) -> np.ndarray:
        """Destination column (view)."""
        return self.edges[:, 1]

    @property
    def num_self_loops(self) -> int:
        """Number of stored self-loop rows."""
        return int(np.count_nonzero(self.src == self.dst))

    @property
    def num_undirected_edges(self) -> int:
        """The paper's ``m``: non-loop directed edges divided by two.

        Only meaningful on symmetric, deduplicated lists; the value is
        computed from row counts without checking symmetry (call
        :meth:`is_symmetric` separately when the invariant is in doubt).
        """
        return (self.m_directed - self.num_self_loops) // 2

    def __len__(self) -> int:
        return self.m_directed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        if self.n != other.n:
            return False
        a = _canonical_order(self.edges, self.n)
        b = _canonical_order(other.edges, other.n)
        return a.shape == b.shape and bool(np.array_equal(a, b))

    def __hash__(self) -> int:  # frozen dataclass with arrays: id-free hash
        return hash((self.n, self.m_directed))

    def __repr__(self) -> str:
        return f"EdgeList(n={self.n}, m_directed={self.m_directed})"

    # ------------------------------------------------------------------ #
    # structural predicates
    # ------------------------------------------------------------------ #
    def is_symmetric(self) -> bool:
        """``True`` iff for every stored ``(u, v)`` the reverse is stored too."""
        if len(self.edges) == 0:
            return True
        fwd = _sorted_unique(self.edges, self.n)
        rev = _sorted_unique(np.ascontiguousarray(self.edges[:, ::-1]), self.n)
        return fwd.shape == rev.shape and bool(np.array_equal(fwd, rev))

    def has_full_self_loops(self) -> bool:
        """``True`` iff every vertex ``0..n-1`` has a self loop (``D = I``)."""
        loops = self.src[self.src == self.dst]
        return len(np.unique(loops)) == self.n

    def has_no_self_loops(self) -> bool:
        """``True`` iff no self loop is stored (``D = O``)."""
        return self.num_self_loops == 0

    def has_duplicates(self) -> bool:
        """``True`` iff any directed edge row appears more than once."""
        return len(np.unique(self.edges, axis=0)) != len(self.edges)

    # ------------------------------------------------------------------ #
    # transformations (all return new EdgeLists)
    # ------------------------------------------------------------------ #
    def deduplicate(self) -> "EdgeList":
        """Remove duplicate directed rows (result is canonically ordered)."""
        return EdgeList(_sorted_unique(self.edges, self.n), self.n)

    def canonicalized(self) -> "EdgeList":
        """Sort rows lexicographically by ``(src, dst)``."""
        return EdgeList(_canonical_order(self.edges, self.n), self.n)

    def symmetrized(self) -> "EdgeList":
        """Union with all reversed edges, deduplicated.

        This is the paper's "we formed the undirected version" preprocessing
        step.  Self loops are kept as single rows.
        """
        both = np.vstack([self.edges, self.edges[:, ::-1]])
        return EdgeList(_sorted_unique(both, self.n), self.n)

    def without_self_loops(self) -> "EdgeList":
        """Drop all self-loop rows."""
        keep = self.src != self.dst
        return EdgeList(self.edges[keep], self.n)

    def with_full_self_loops(self) -> "EdgeList":
        """Ensure a self loop on **every** vertex (the paper's ``A + I_A``)."""
        loops = np.arange(self.n, dtype=np.int64)
        loop_rows = np.column_stack([loops, loops])
        base = self.without_self_loops().edges
        return EdgeList(np.vstack([base, loop_rows]), self.n)

    def relabeled(self, mapping: np.ndarray) -> "EdgeList":
        """Apply a vertex relabeling ``old_id -> mapping[old_id]``.

        ``mapping`` must be a length-``n`` array of new ids; the new vertex
        count is ``mapping.max() + 1``.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self.n,):
            raise GraphFormatError(
                f"mapping must have shape ({self.n},), got {mapping.shape}"
            )
        if mapping.size and mapping.min() < 0:
            raise GraphFormatError("mapping contains negative ids")
        new_n = int(mapping.max()) + 1 if mapping.size else 0
        return EdgeList(mapping[self.edges], new_n)

    def induced_subgraph(self, vertices: np.ndarray) -> "EdgeList":
        """Induced subgraph on ``vertices``, relabeled to ``0..len(v)-1``.

        ``vertices`` may be in any order; edge endpoints are remapped to the
        position of their vertex in the (sorted, deduplicated) selection.
        """
        verts = np.unique(np.asarray(vertices, dtype=np.int64))
        if verts.size and (verts[0] < 0 or verts[-1] >= self.n):
            raise GraphFormatError("vertex selection out of range")
        lookup = np.full(self.n, -1, dtype=np.int64)
        lookup[verts] = np.arange(len(verts), dtype=np.int64)
        keep = (lookup[self.src] >= 0) & (lookup[self.dst] >= 0)
        sub = lookup[self.edges[keep]]
        return EdgeList(sub, len(verts))

    def concatenated(self, other: "EdgeList") -> "EdgeList":
        """Stack rows of two edge lists over the same vertex set."""
        if other.n != self.n:
            raise GraphFormatError(
                f"vertex counts differ: {self.n} vs {other.n}"
            )
        return EdgeList(np.vstack([self.edges, other.edges]), self.n)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_scipy_sparse(self, dtype=np.float64):
        """Build a ``scipy.sparse.csr_matrix`` adjacency (0/1 entries).

        Duplicate rows collapse to a single 1 entry, matching the boolean
        adjacency semantics of the paper.
        """
        from scipy import sparse

        if self.n == 0:
            return sparse.csr_matrix((0, 0), dtype=dtype)
        data = np.ones(len(self.edges), dtype=dtype)
        mat = sparse.coo_matrix(
            (data, (self.src, self.dst)), shape=(self.n, self.n)
        ).tocsr()
        mat.data[:] = 1  # collapse duplicates to boolean
        mat.sum_duplicates()
        mat.data[:] = 1
        return mat

    def to_networkx(self):
        """Build a ``networkx.Graph`` (undirected; used for cross-validation)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edges))
        return g

    @classmethod
    def from_scipy_sparse(cls, mat) -> "EdgeList":
        """Edge list of the nonzero pattern of a square sparse matrix."""
        coo = mat.tocoo()
        if coo.shape[0] != coo.shape[1]:
            raise GraphFormatError(f"matrix must be square, got {coo.shape}")
        keep = coo.data != 0
        edges = np.column_stack(
            [coo.row[keep].astype(np.int64), coo.col[keep].astype(np.int64)]
        )
        return cls(edges, coo.shape[0])

    @classmethod
    def from_pairs(cls, pairs, n: int | None = None) -> "EdgeList":
        """Build from an iterable of ``(u, v)`` pairs (convenience for tests)."""
        arr = np.array(list(pairs), dtype=np.int64).reshape(-1, 2)
        return cls(arr, n)

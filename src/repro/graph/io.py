"""Edge-list file I/O.

The paper's generator "reads two factor graphs A and B from file"; this
module provides the matching formats:

* **text** -- one ``src dst`` pair per line, ``#`` comments, any whitespace
  separator (the SNAP convention, so real SNAP downloads drop in directly);
* **npz** -- compressed numpy container storing the edge array and vertex
  count (fast, lossless round trip);
* **partitioned** -- one text shard per rank, the layout a distributed run
  reads so each rank loads only its slice of A.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList

__all__ = [
    "write_text",
    "read_text",
    "write_npz",
    "read_npz",
    "write_partitioned",
    "read_partitioned",
    "read_partition_shard",
]


def write_text(el: EdgeList, path: str | os.PathLike, *, header: bool = True) -> None:
    """Write one ``src<TAB>dst`` line per directed edge.

    A ``# n=<n>`` header records the vertex count so isolated trailing
    vertices survive the round trip.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# n={el.n}\n")
        np.savetxt(fh, el.edges, fmt="%d", delimiter="\t")


def read_text(path: str | os.PathLike, n: int | None = None) -> EdgeList:
    """Read a whitespace-separated edge list; ``#`` lines are comments.

    If a ``# n=<n>`` header is present (and ``n`` not given) the vertex count
    is taken from it; otherwise it is inferred from the max id.
    """
    path = Path(path)
    header_n: int | None = None
    rows: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line.lstrip("#").strip()
                if body.startswith("n=") and header_n is None:
                    try:
                        header_n = int(body[2:])
                    except ValueError:
                        pass
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected two ids, got {line!r}")
            try:
                rows.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer id in {line!r}") from exc
    edges = np.array(rows, dtype=np.int64).reshape(-1, 2)
    return EdgeList(edges, n if n is not None else header_n)


def write_npz(el: EdgeList, path: str | os.PathLike) -> None:
    """Lossless compressed binary round trip of an edge list."""
    np.savez_compressed(Path(path), edges=el.edges, n=np.int64(el.n))


def read_npz(path: str | os.PathLike) -> EdgeList:
    """Read an edge list written by :func:`write_npz`."""
    with np.load(Path(path)) as data:
        return EdgeList(data["edges"], int(data["n"]))


def _shard_path(directory: Path, rank: int) -> Path:
    return directory / f"part_{rank:05d}.txt"


def write_partitioned(
    el: EdgeList, directory: str | os.PathLike, nparts: int
) -> list[Path]:
    """Split the rows of ``el`` into ``nparts`` contiguous text shards.

    This mirrors the paper's setup where "edges of A are evenly distributed
    across the R processors": rank ``r`` later reads only shard ``r``.
    Returns the shard paths.
    """
    if nparts <= 0:
        raise GraphFormatError(f"nparts must be positive, got {nparts}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bounds = np.linspace(0, len(el.edges), nparts + 1).astype(np.int64)
    paths = []
    for r in range(nparts):
        shard = EdgeList(el.edges[bounds[r] : bounds[r + 1]], el.n)
        p = _shard_path(directory, r)
        write_text(shard, p)
        paths.append(p)
    return paths


def read_partition_shard(
    directory: str | os.PathLike, rank: int, n: int | None = None
) -> EdgeList:
    """Read the single shard owned by ``rank``."""
    return read_text(_shard_path(Path(directory), rank), n)


def read_partitioned(directory: str | os.PathLike) -> EdgeList:
    """Reassemble all shards in ``directory`` into one edge list."""
    directory = Path(directory)
    shards = sorted(directory.glob("part_*.txt"))
    if not shards:
        raise GraphFormatError(f"no shards found in {directory}")
    parts = [read_text(p) for p in shards]
    n = max(p.n for p in parts)
    edges = np.vstack([p.edges for p in parts])
    return EdgeList(edges, n)

"""Matrix Market exchange format for graphs.

The MM ``coordinate`` format is the lingua franca of HPC graph suites
(GraphChallenge distributes its datasets this way), so factors can be
pulled straight from those archives.  We support the ``pattern`` field
(unweighted adjacency) with ``general`` or ``symmetric`` symmetry:

* reading a ``symmetric`` file expands the stored lower triangle into both
  directions (loops once), yielding this library's symmetric-EdgeList
  convention;
* writing detects symmetry and emits the compact ``symmetric`` form when
  possible.

Numeric ``real``/``integer`` fields are accepted on read (values ignored
beyond zero/nonzero), since GraphChallenge files often carry weights.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER_PREFIX = "%%MatrixMarket"


def read_matrix_market(path: str | os.PathLike) -> EdgeList:
    """Read a Matrix Market coordinate file as an EdgeList (1-based ids)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        if not header.startswith(_HEADER_PREFIX):
            raise GraphFormatError(f"{path}: missing MatrixMarket header")
        parts = header.split()
        if len(parts) < 5:
            raise GraphFormatError(f"{path}: malformed header {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise GraphFormatError(
                f"{path}: only 'matrix coordinate' files are supported"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("pattern", "real", "integer"):
            raise GraphFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(f"{path}: unsupported symmetry {symmetry!r}")

        # skip comments, read size line
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        dims = line.split()
        if len(dims) < 3:
            raise GraphFormatError(f"{path}: malformed size line {line!r}")
        rows, cols, nnz = int(dims[0]), int(dims[1]), int(dims[2])
        if rows != cols:
            raise GraphFormatError(f"{path}: matrix must be square, got {rows}x{cols}")

        data = np.loadtxt(fh, ndmin=2) if nnz else np.empty((0, 3))
    if nnz and data.shape[0] != nnz:
        raise GraphFormatError(
            f"{path}: size line promises {nnz} entries, file has {data.shape[0]}"
        )
    if nnz == 0:
        return EdgeList(np.empty((0, 2), dtype=np.int64), rows)
    src = data[:, 0].astype(np.int64) - 1
    dst = data[:, 1].astype(np.int64) - 1
    if field != "pattern" and data.shape[1] >= 3:
        keep = data[:, 2] != 0
        src, dst = src[keep], dst[keep]
    edges = np.column_stack([src, dst])
    el = EdgeList(edges, rows)
    if symmetry == "symmetric":
        el = el.symmetrized()
    return el.deduplicate()


def write_matrix_market(
    el: EdgeList, path: str | os.PathLike, *, comment: str | None = None
) -> None:
    """Write an EdgeList as a pattern coordinate file.

    Symmetric edge lists are stored compactly (lower triangle + loops,
    ``symmetric`` header); anything else is stored ``general``.
    """
    path = Path(path)
    symmetric = el.is_symmetric()
    if symmetric:
        keep = el.src >= el.dst  # lower triangle, loops included
        rows = el.deduplicate().edges
        rows = rows[rows[:, 0] >= rows[:, 1]]
        symmetry = "symmetric"
    else:
        rows = el.deduplicate().edges
        symmetry = "general"
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{_HEADER_PREFIX} matrix coordinate pattern {symmetry}\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{el.n} {el.n} {len(rows)}\n")
        np.savetxt(fh, rows + 1, fmt="%d")

"""Graph substrate: edge lists, CSR adjacency, generators, datasets, I/O."""

from repro.graph.edgelist import EdgeList
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    empty_graph,
    clique,
    cycle,
    path,
    star,
    grid_2d,
    disjoint_cliques,
    erdos_renyi,
    stochastic_block_model,
    chung_lu,
    rmat,
    directed_cycle,
    directed_erdos_renyi,
)
from repro.graph.datasets import (
    gnutella_like,
    groundtruth_like,
    groundtruth_partition,
    largest_connected_component,
)
from repro.graph import io
from repro.graph import mmio

__all__ = [
    "EdgeList",
    "CSRGraph",
    "empty_graph",
    "clique",
    "cycle",
    "path",
    "star",
    "grid_2d",
    "disjoint_cliques",
    "erdos_renyi",
    "stochastic_block_model",
    "chung_lu",
    "rmat",
    "directed_cycle",
    "directed_erdos_renyi",
    "gnutella_like",
    "groundtruth_like",
    "groundtruth_partition",
    "largest_connected_component",
    "io",
    "mmio",
]

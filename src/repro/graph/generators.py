"""Factor-graph generators.

Nonstochastic Kronecker benchmarks start from *small* factors with known
structure; this module provides the deterministic families used throughout
the paper's examples (cliques, cycles, stars, disjoint cliques for Ex. 1) and
the random families used in its evaluation framing (Erdos-Renyi, stochastic
block models for Section VI, Chung-Lu power-law graphs as scale-free stand-ins,
and R-MAT -- the *stochastic* Kronecker generator the paper contrasts with).

All generators return a symmetric :class:`~repro.graph.edgelist.EdgeList`
containing both directions of every undirected edge and **no self loops**
(add them explicitly with :meth:`EdgeList.with_full_self_loops`, mirroring the
paper's ``A + I_A`` notation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList
from repro.util.validation import check_positive_int, check_probability

__all__ = [
    "empty_graph",
    "clique",
    "cycle",
    "path",
    "star",
    "grid_2d",
    "disjoint_cliques",
    "erdos_renyi",
    "stochastic_block_model",
    "chung_lu",
    "rmat",
    "directed_cycle",
    "directed_erdos_renyi",
    "complete_with_loops",
]


def _undirected_pairs_to_edgelist(u: np.ndarray, v: np.ndarray, n: int) -> EdgeList:
    """Symmetrize unique non-loop pairs ``(u, v)`` into an EdgeList."""
    keep = u != v
    u, v = u[keep], v[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    pairs = np.unique(np.column_stack([lo, hi]), axis=0)
    both = np.vstack([pairs, pairs[:, ::-1]])
    return EdgeList(both, n)


# --------------------------------------------------------------------- #
# deterministic families
# --------------------------------------------------------------------- #
def empty_graph(n: int) -> EdgeList:
    """``n`` isolated vertices."""
    if n < 0:
        raise GraphFormatError(f"n must be >= 0, got {n}")
    return EdgeList(np.empty((0, 2), dtype=np.int64), n)


def clique(n: int) -> EdgeList:
    """Complete graph ``K_n`` (no self loops)."""
    n = check_positive_int(n, "n")
    i, j = np.nonzero(~np.eye(n, dtype=bool))
    return EdgeList(np.column_stack([i, j]).astype(np.int64), n)


def cycle(n: int) -> EdgeList:
    """Cycle ``C_n`` for ``n >= 3``."""
    n = check_positive_int(n, "n")
    if n < 3:
        raise GraphFormatError(f"cycle needs n >= 3, got {n}")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return _undirected_pairs_to_edgelist(u, v, n)


def path(n: int) -> EdgeList:
    """Path ``P_n`` on ``n`` vertices (``n - 1`` edges)."""
    n = check_positive_int(n, "n")
    u = np.arange(n - 1, dtype=np.int64)
    return _undirected_pairs_to_edgelist(u, u + 1, n)


def star(n: int) -> EdgeList:
    """Star with hub ``0`` and ``n - 1`` leaves."""
    n = check_positive_int(n, "n")
    leaves = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    return _undirected_pairs_to_edgelist(hub, leaves, n)


def grid_2d(rows: int, cols: int) -> EdgeList:
    """``rows x cols`` 4-neighbor lattice."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz_u = ids[:, :-1].ravel()
    horiz_v = ids[:, 1:].ravel()
    vert_u = ids[:-1, :].ravel()
    vert_v = ids[1:, :].ravel()
    u = np.concatenate([horiz_u, vert_u])
    v = np.concatenate([horiz_v, vert_v])
    return _undirected_pairs_to_edgelist(u, v, rows * cols)


def disjoint_cliques(num_cliques: int, clique_size: int) -> EdgeList:
    """``x`` disjoint cliques of size ``y`` (the paper's Ex. 1 factor).

    The Kronecker product of two such graphs (with full self loops added)
    is again disjoint cliques, with ``x_A * x_B`` cliques of size
    ``y_A * y_B``.
    """
    x = check_positive_int(num_cliques, "num_cliques")
    y = check_positive_int(clique_size, "clique_size")
    base = clique(y).edges if y > 1 else np.empty((0, 2), dtype=np.int64)
    blocks = [base + k * y for k in range(x)]
    edges = np.vstack(blocks) if blocks else np.empty((0, 2), dtype=np.int64)
    return EdgeList(edges, x * y)


# --------------------------------------------------------------------- #
# random families
# --------------------------------------------------------------------- #
def erdos_renyi(n: int, p: float, seed: int | None = None) -> EdgeList:
    """G(n, p): each unordered non-loop pair is an edge with probability ``p``."""
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    keep = rng.random(len(iu)) < p
    return _undirected_pairs_to_edgelist(
        iu[keep].astype(np.int64), ju[keep].astype(np.int64), n
    )


def stochastic_block_model(
    block_sizes: list[int] | np.ndarray,
    p_in: float,
    p_out: float,
    seed: int | None = None,
) -> EdgeList:
    """SBM with per-block internal probability ``p_in``, external ``p_out``.

    This is the factor family of Section VI's Ex. 1 generalization: products
    of SBM factors have Kronecker communities with densities near
    ``p_in**2`` / ``p_out**2``.
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    if sizes.ndim != 1 or len(sizes) == 0 or sizes.min() <= 0:
        raise GraphFormatError("block_sizes must be a non-empty positive vector")
    p_in = check_probability(p_in, "p_in")
    p_out = check_probability(p_out, "p_out")
    n = int(sizes.sum())
    labels = np.repeat(np.arange(len(sizes)), sizes)
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    same = labels[iu] == labels[ju]
    prob = np.where(same, p_in, p_out)
    keep = rng.random(len(iu)) < prob
    return _undirected_pairs_to_edgelist(
        iu[keep].astype(np.int64), ju[keep].astype(np.int64), n
    )


def chung_lu(
    degrees: np.ndarray | list[int], seed: int | None = None
) -> EdgeList:
    """Chung-Lu random graph with expected degree sequence ``degrees``.

    Pair ``(i, j)`` is an edge with probability
    ``min(1, w_i * w_j / sum(w))``.  Used as the scale-free factor family
    (heavy-tailed degrees, small diameter) standing in for real-world
    graphs like the paper's gnutella08.
    """
    w = np.asarray(degrees, dtype=np.float64)
    if w.ndim != 1 or len(w) == 0 or w.min() < 0:
        raise GraphFormatError("degrees must be a non-negative vector")
    total = w.sum()
    if total <= 0:
        return empty_graph(len(w))
    rng = np.random.default_rng(seed)
    n = len(w)
    iu, ju = np.triu_indices(n, k=1)
    prob = np.minimum(1.0, w[iu] * w[ju] / total)
    keep = rng.random(len(iu)) < prob
    return _undirected_pairs_to_edgelist(
        iu[keep].astype(np.int64), ju[keep].astype(np.int64), n
    )


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = None,
) -> EdgeList:
    """R-MAT / stochastic-Kronecker generator (Graph500 style).

    Recursively places ``edge_factor * 2**scale`` directed edge samples into
    the quadrants of a ``2**scale`` adjacency matrix with probabilities
    ``(a, b, c, d = 1 - a - b - c)``, then symmetrizes and deduplicates.

    This is the *stochastic* generator the paper contrasts with: exact
    properties are unknown until generation completes.  Included as the
    baseline class for the generation benchmarks.
    """
    scale = check_positive_int(scale, "scale")
    edge_factor = check_positive_int(edge_factor, "edge_factor")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"quadrant probabilities must be >= 0, got d={d:.3f}")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Vectorized recursive descent: one uniform draw per (edge, level).
    thresholds = np.array([a, a + b, a + b + c])
    for _level in range(scale):
        r = rng.random(m)
        right = (r >= thresholds[0]) & (r < thresholds[1])
        down = (r >= thresholds[1]) & (r < thresholds[2])
        diag = r >= thresholds[2]
        src = (src << 1) | (down | diag)
        dst = (dst << 1) | (right | diag)
    return _undirected_pairs_to_edgelist(src, dst, n)


# --------------------------------------------------------------------- #
# directed families (Section V's distance results hold for digraphs too)
# --------------------------------------------------------------------- #
def directed_cycle(n: int) -> EdgeList:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (strongly connected)."""
    n = check_positive_int(n, "n")
    if n < 2:
        raise GraphFormatError(f"directed cycle needs n >= 2, got {n}")
    u = np.arange(n, dtype=np.int64)
    return EdgeList(np.column_stack([u, (u + 1) % n]), n)


def complete_with_loops(n: int) -> EdgeList:
    """All ``n**2`` ordered pairs, self loops included.

    The Kronecker product of two such graphs enumerates every ordered
    vertex pair of the product exactly once -- the candidate space the
    stochastic tier (:mod:`repro.skg`) filters with its acceptance hash.
    """
    n = check_positive_int(n, "n")
    i = np.repeat(np.arange(n, dtype=np.int64), n)
    j = np.tile(np.arange(n, dtype=np.int64), n)
    return EdgeList(np.column_stack([i, j]), n)


def directed_erdos_renyi(n: int, p: float, seed: int | None = None) -> EdgeList:
    """Directed G(n, p): each ordered non-loop pair independently an edge."""
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    u, v = np.nonzero(mask)
    return EdgeList(
        np.column_stack([u.astype(np.int64), v.astype(np.int64)]), n
    )

"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on two external datasets we cannot ship:

* **gnutella08** (SNAP): a 6.3K-vertex / 21K-edge peer-to-peer graph, used in
  the Fig. 1 eccentricity experiment after taking the undirected largest
  connected component and adding all self loops.
* **groundtruth_20000** (GraphChallenge): a 20K-vertex graph with 33
  ground-truth communities, internal densities in ``[3e-2, 1e-1]`` and
  external densities in ``[2.5e-4, 5.5e-4]``, used in the Fig. 2 community
  experiment.

Both experiments validate *topology-independent* Kronecker composition laws,
so seeded synthetic graphs with the same structural signature exercise the
identical code paths (see DESIGN.md section 2).  The functions here also
reproduce the paper's preprocessing pipeline (LCC extraction, symmetrization,
self-loop addition) so examples read like the paper's workflow.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.generators import chung_lu, stochastic_block_model

__all__ = [
    "gnutella_like",
    "groundtruth_like",
    "largest_connected_component",
    "GNUTELLA_PAPER_STATS",
    "GROUNDTRUTH_PAPER_STATS",
]

#: Sizes reported in the paper's Section V table for gnutella08.
GNUTELLA_PAPER_STATS = {
    "n_A": 6_300,
    "m_A": 21_000,
    "n_C": 40_000_000,
    "m_C": 1_100_000_000,
}

#: Sizes and density ranges from the paper's Section VI-A table.
GROUNDTRUTH_PAPER_STATS = {
    "n_A": 20_000,
    "m_A": 408_778,
    "n_C": 400_000_000,
    "m_C": 83_549_726_642,
    "num_communities_A": 33,
    "num_communities_C": 1089,
    "rho_in_A": (3e-2, 1e-1),
    "rho_out_A": (2.5e-4, 5.5e-4),
    "rho_in_C": (1e-3, 1.2e-2),
    "rho_out_C": (5e-7, 3e-6),
}


def largest_connected_component(el: EdgeList) -> EdgeList:
    """Induced subgraph on the largest connected component, relabeled.

    The input is treated as undirected (components of the symmetrized
    graph); the output keeps the original edge rows restricted to the
    component, so direction/self-loop structure is preserved.
    """
    from repro.analytics.components import connected_components

    if el.n == 0:
        return el
    labels = connected_components(el)
    counts = np.bincount(labels, minlength=labels.max() + 1 if len(labels) else 0)
    biggest = int(np.argmax(counts))
    verts = np.nonzero(labels == biggest)[0]
    return el.induced_subgraph(verts)


def gnutella_like(
    n: int = 1200,
    avg_degree: float = 6.6,
    exponent: float = 2.3,
    seed: int = 20190814,
    *,
    with_self_loops: bool = True,
) -> EdgeList:
    """Seeded scale-free stand-in for the paper's preprocessed gnutella08.

    Construction: Chung-Lu graph with a truncated power-law expected-degree
    sequence (exponent ``~2.3``, matching P2P topologies), then the paper's
    preprocessing pipeline -- undirected largest connected component, all
    self loops added (``with_self_loops=True``, required by the distance
    formulas of Section V).

    The default ``n`` is scaled down ~5x from the real dataset so that the
    materialized product ``C = A (x) A`` (~1.4M vertices) fits comfortably
    in laptop memory; pass ``n=6300`` for paper-scale factors.
    """
    rng = np.random.default_rng(seed)
    # Truncated Pareto degree sequence scaled to the requested mean.
    raw = (1.0 - rng.random(n)) ** (-1.0 / (exponent - 1.0))
    raw = np.minimum(raw, np.sqrt(n))  # truncate hubs to keep CL probs sane
    degrees = raw * (avg_degree / raw.mean())
    el = chung_lu(degrees, seed=seed)
    el = largest_connected_component(el)
    if with_self_loops:
        el = el.with_full_self_loops()
    return el


def groundtruth_like(
    num_blocks: int = 33,
    block_size: int = 40,
    p_in: float = 6e-2,
    p_out: float = 4e-4,
    seed: int = 20190814,
) -> EdgeList:
    """Seeded SBM stand-in for GraphChallenge ``groundtruth_20000``.

    33 blocks by default (so ``C = (A+I) (x) (A+I)`` has the paper's
    ``33^2 = 1089`` Kronecker communities); ``p_in``/``p_out`` sit inside the
    paper's reported per-community density ranges.  The default block size is
    scaled down ~15x from the real dataset (which has ~600-vertex blocks) so
    the materialized product stays laptop-sized; paper-scale factors use
    ``block_size=606``.

    Returns the factor **without** self loops; the community formulas
    (Thm. 6) apply to ``(A + I) (x) (B + I)``, added by the caller.
    """
    sizes = [block_size] * num_blocks
    return stochastic_block_model(sizes, p_in, p_out, seed=seed)


def groundtruth_partition(num_blocks: int = 33, block_size: int = 40) -> list[np.ndarray]:
    """The ground-truth community partition matching :func:`groundtruth_like`."""
    return [
        np.arange(b * block_size, (b + 1) * block_size, dtype=np.int64)
        for b in range(num_blocks)
    ]

"""Compressed sparse row adjacency structure.

The trusted reference algorithms in :mod:`repro.analytics` (BFS, triangle
enumeration, eccentricity pruning) all run over a CSR adjacency with sorted
neighbor lists: contiguous per-vertex slices keep the memory access pattern
cache-friendly and let edge-membership queries use binary search.

:class:`CSRGraph` is a *structural* adjacency only -- 0/1 entries -- which is
exactly the boolean adjacency-matrix semantics used by the paper's formulas.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList

__all__ = ["CSRGraph"]


class CSRGraph:
    """Static CSR adjacency over vertices ``0..n-1``.

    Build with :meth:`from_edgelist`; the constructor accepts raw arrays for
    internal use (arrays are trusted, not copied).

    Attributes
    ----------
    n:
        Vertex count.
    indptr:
        ``(n + 1,)`` int64 row-pointer array.
    indices:
        Destination ids; each row slice ``indices[indptr[v]:indptr[v+1]]``
        is sorted ascending and duplicate-free.
    """

    __slots__ = ("n", "indptr", "indices")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.n = int(n)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.shape != (self.n + 1,):
            raise GraphFormatError(
                f"indptr must have shape ({self.n + 1},), got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise GraphFormatError("indptr endpoints inconsistent with indices")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edgelist(cls, el: EdgeList) -> "CSRGraph":
        """Build a deduplicated, sorted CSR from an edge list.

        The edge list is used as-is: for undirected semantics it must
        already contain both directions (see :meth:`EdgeList.symmetrized`).
        """
        dedup = el.deduplicate()  # also canonically ordered
        counts = np.bincount(dedup.src, minlength=el.n)
        indptr = np.zeros(el.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(el.n, indptr, dedup.dst.copy())

    def to_edgelist(self) -> EdgeList:
        """Expand back to an (ordered, deduplicated) edge list."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees_total())
        return EdgeList(np.column_stack([src, self.indices]), self.n)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored directed edges (loops included)."""
        return len(self.indices)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Edge-membership test by binary search in ``u``'s row."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return pos < len(row) and row[pos] == v

    def has_self_loop(self, v: int) -> bool:
        """``True`` iff ``(v, v)`` is stored."""
        return self.has_edge(v, v)

    def degrees_total(self) -> np.ndarray:
        """Row lengths: out-degree *including* self loops."""
        return np.diff(self.indptr)

    def degrees(self) -> np.ndarray:
        """The paper's ``d``: degree **excluding** self loops.

        Vectorized: subtract the loop indicator from each row length.
        """
        deg = self.degrees_total().copy()
        loops = self.self_loop_mask()
        deg -= loops.astype(np.int64)
        return deg

    def self_loop_mask(self) -> np.ndarray:
        """Boolean per-vertex mask of which vertices carry a self loop."""
        rows = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees_total())
        mask = np.zeros(self.n, dtype=bool)
        mask[rows[self.indices == rows]] = True
        return mask

    def is_symmetric(self) -> bool:
        """``True`` iff the adjacency pattern equals its transpose."""
        return self.to_edgelist().is_symmetric()

    def to_scipy_sparse(self, dtype=np.float64):
        """View as a ``scipy.sparse.csr_matrix`` of ones."""
        from scipy import sparse

        data = np.ones(self.nnz, dtype=dtype)
        return sparse.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.n, self.n)
        )

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, nnz={self.nnz})"

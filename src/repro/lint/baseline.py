"""Findings baseline: CI fails only on *new* findings.

A baseline is a checked-in JSON file recording the fingerprints of known
(accepted or not-yet-fixed) findings.  Fingerprints are content-addressed
-- ``sha1(rule :: stripped source line :: content context :: occurrence
index)`` -- so they survive both unrelated line drift *and* file moves:
relocating a module (``src/x.py`` -> ``src/pkg/x.py``) keeps its
baselined findings baselined, while editing the finding line or its
immediate surroundings (or adding another identical violation) surfaces
it as new.  The file path is recorded per entry for human readers but is
deliberately not part of the fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from collections import defaultdict
from pathlib import Path
from typing import Iterable

from repro.lint.core import Finding

__all__ = [
    "fingerprints",
    "load_baseline",
    "write_baseline",
    "filter_baseline",
]

_VERSION = 2


def fingerprints(findings: Iterable[Finding]) -> list[tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    Findings sharing ``(rule, snippet, context)`` are disambiguated by
    their occurrence index in ``(path, line, col)`` order, so N identical
    violations baseline as N distinct fingerprints and an N+1st is
    reported as new.
    """
    by_key: dict[tuple[str, str, str], list[Finding]] = defaultdict(list)
    for f in findings:
        by_key[(f.rule, f.snippet, f.context)].append(f)
    out: list[tuple[Finding, str]] = []
    for key, group in by_key.items():
        group.sort(key=lambda f: (f.path, f.line, f.col))
        for occurrence, f in enumerate(group):
            raw = "::".join((*key, str(occurrence)))
            out.append((f, hashlib.sha1(raw.encode("utf-8")).hexdigest()))
    out.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].col))
    return out


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write a baseline file covering ``findings``; returns the count."""
    entries = [
        {
            "fingerprint": fp,
            "rule": f.rule,
            "path": f.path,
            "snippet": f.snippet,
        }
        for f, fp in fingerprints(findings)
    ]
    payload = {
        "version": _VERSION,
        "tool": "repro.lint",
        "findings": entries,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def load_baseline(path: str | Path) -> set[str]:
    """Read the fingerprint set from a baseline file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path} (this tool writes version {_VERSION}; regenerate "
            f"with --write-baseline)"
        )
    return {e["fingerprint"] for e in payload.get("findings", [])}


def filter_baseline(
    findings: Iterable[Finding], baseline: set[str]
) -> list[Finding]:
    """Drop findings whose fingerprint is covered by the baseline."""
    return [f for f, fp in fingerprints(findings) if fp not in baseline]

"""SPMD correctness static analysis for the repro codebase.

The distributed generator is an SPMD program whose correctness rests on
invariants the Python runtime cannot enforce:

* every rank must execute the **same collective sequence** -- a
  ``barrier`` reachable only under ``if comm.rank == 0`` deadlocks the
  world (Section III's asynchronous generation);
* buffers received from ``recv``/``alltoall``/``allgather`` may be
  **shared, read-only views** and must never be mutated in place (the
  contract of :meth:`repro.distributed.comm.Communicator.alltoall`);
* Kronecker index arithmetic (``i * n_B + k``) must stay in **int64**,
  and allocations feeding it need explicit dtypes;
* ground-truth output must be **deterministic**: no unordered ``set``
  iteration feeding edges, no process-global ``np.random`` state, no
  time-derived seeds.

This package makes those invariants machine-checked: an AST-based rule
framework (:mod:`repro.lint.core`) with per-file rule families
(:mod:`repro.lint.rules`), a *whole-program* analysis layer -- a
communication IR per module (:mod:`repro.lint.ir`), a call graph with
per-function comm summaries (:mod:`repro.lint.callgraph`), and
interprocedural protocol rules (:mod:`repro.lint.rules.protocol`) --
per-line ``# repro-lint: disable=RULE`` suppressions, a checked-in
findings baseline (:mod:`repro.lint.baseline`) so CI fails only on
*new* findings, an incremental content-addressed cache
(:mod:`repro.lint.cache` driven by :mod:`repro.lint.engine`), and
human/JSON/SARIF reporters behind ``python -m repro.lint``
(:mod:`repro.lint.cli`).

The dynamic companion -- the runtime collective-order sentinel that turns
a would-be deadlock into a diagnostic naming both divergent call sites --
lives in :mod:`repro.distributed.checked`.
"""

from repro.lint.baseline import (
    filter_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import (
    Finding,
    LintContext,
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
    known_rule_names,
    lint_file,
    lint_paths,
    lint_source,
    register,
    register_program,
    resolve_selection,
)
from repro.lint.engine import analyze_paths
from repro.lint.rules import (
    BufferOwnershipRule,
    CollectiveSymmetryRule,
    DeterminismRule,
    DtypeOverflowRule,
)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "ProgramRule",
    "all_rules",
    "all_program_rules",
    "known_rule_names",
    "resolve_selection",
    "register",
    "register_program",
    "lint_source",
    "lint_file",
    "lint_paths",
    "analyze_paths",
    "load_baseline",
    "write_baseline",
    "filter_baseline",
    "CollectiveSymmetryRule",
    "BufferOwnershipRule",
    "DtypeOverflowRule",
    "DeterminismRule",
]

"""SPMD correctness static analysis for the repro codebase.

The distributed generator is an SPMD program whose correctness rests on
invariants the Python runtime cannot enforce:

* every rank must execute the **same collective sequence** -- a
  ``barrier`` reachable only under ``if comm.rank == 0`` deadlocks the
  world (Section III's asynchronous generation);
* buffers received from ``recv``/``alltoall``/``allgather`` may be
  **shared, read-only views** and must never be mutated in place (the
  contract of :meth:`repro.distributed.comm.Communicator.alltoall`);
* Kronecker index arithmetic (``i * n_B + k``) must stay in **int64**,
  and allocations feeding it need explicit dtypes;
* ground-truth output must be **deterministic**: no unordered ``set``
  iteration feeding edges, no process-global ``np.random`` state, no
  time-derived seeds.

This package makes those invariants machine-checked: an AST-based rule
framework (:mod:`repro.lint.core`) with four rule families
(:mod:`repro.lint.rules`), per-line ``# repro-lint: disable=RULE``
suppressions, a checked-in findings baseline (:mod:`repro.lint.baseline`)
so CI fails only on *new* findings, and human/JSON reporters behind
``python -m repro.lint`` (:mod:`repro.lint.cli`).

The dynamic companion -- the runtime collective-order sentinel that turns
a would-be deadlock into a diagnostic naming both divergent call sites --
lives in :mod:`repro.distributed.checked`.
"""

from repro.lint.baseline import (
    filter_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.rules import (
    BufferOwnershipRule,
    CollectiveSymmetryRule,
    DeterminismRule,
    DtypeOverflowRule,
)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "register",
    "lint_source",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "filter_baseline",
    "CollectiveSymmetryRule",
    "BufferOwnershipRule",
    "DtypeOverflowRule",
    "DeterminismRule",
]

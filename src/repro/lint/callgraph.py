"""Call graph and per-function communication summaries.

Builds a :class:`Program` from the per-module communication IR
(:mod:`repro.lint.ir`) and computes, by fixpoint iteration over the call
graph, a :class:`Summary` for every function:

``has_collective``
    calling this function executes a collective on some path
    (transitively through callees), with a representative site for
    diagnostics;
``returns_request``
    the function may return an in-flight request to its caller;
``finishes_params``
    positional parameters the function may complete (``wait`` /
    ``alltoall_finish`` on the parameter, directly or through a callee);
``starts_on_params``
    parameters whose buffer is put in flight by a nonblocking start
    whose request escapes to the caller -- the caller's argument is
    owned by the runtime until the returned request completes;
``returns_params``
    parameters that may be returned unchanged (alias-through helpers
    such as an encoder that passes raw payloads straight through).

Call resolution is deliberately lexical: bare names resolve to nested
defs, module-level functions, then ``from``-imports; ``self.m()``
resolves to a method of the enclosing class; dotted chains resolve
through import aliases.  Calls that cannot be resolved are assumed
effect-free -- the checker compensates by optimistically releasing any
request passed to an unresolved call (see
:mod:`repro.lint.rules.protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.ir import (
    CallNode,
    FuncIR,
    ModuleIR,
    OpNode,
    ReturnNode,
)

__all__ = ["Summary", "Program", "flatten"]


@dataclass(frozen=True)
class Summary:
    """Abstract communication behaviour of one function."""

    has_collective: bool = False
    collective_site: tuple = ()  # (op, path, line) of a representative site
    returns_request: bool = False
    finishes_params: frozenset = frozenset()
    starts_on_params: frozenset = frozenset()
    returns_params: frozenset = frozenset()


_EMPTY = Summary()

_CHILD_LISTS = ("then", "orelse", "body", "final")


def flatten(nodes):
    """Yield every node of a body in source order, descending into
    control-flow children (a *may*-analysis view of the function)."""
    for node in nodes:
        yield node
        for attr in _CHILD_LISTS:
            for child in getattr(node, attr, ()):
                yield from flatten([child])
        for handler in getattr(node, "handlers", ()):
            yield from flatten(handler)


class Program:
    """An indexed whole program: module IRs, call resolution, summaries."""

    def __init__(self, modules: list[ModuleIR]) -> None:
        self.modules: dict[str, ModuleIR] = {}
        for mod in modules:
            self.modules[mod.module] = mod
        #: attribute names (last segment) that some function completes a
        #: request through (``self._inner.wait()`` releases ``_inner``).
        self.attr_releases: set[str] = set()
        self.summaries: dict[tuple[str, str], Summary] = {}
        #: scratch space for analyses that want to share work between
        #: rules (e.g. the request-state interpretation).
        self.scratch: dict = {}
        self._collect_attr_releases()
        self._fixpoint()

    # -- iteration --------------------------------------------------------
    def iter_functions(self):
        """Yield ``(module_ir, func_ir)`` over the whole program,
        deterministically ordered."""
        for name in sorted(self.modules):
            mod = self.modules[name]
            for qual in sorted(mod.functions):
                yield mod, mod.functions[qual]

    def summary_of(self, mod: ModuleIR, fn: FuncIR) -> Summary:
        return self.summaries.get((mod.module, fn.qualname), _EMPTY)

    # -- call resolution --------------------------------------------------
    def resolve(
        self, mod: ModuleIR, fn: FuncIR, chain: tuple
    ) -> tuple[ModuleIR, FuncIR, int] | None:
        """Resolve a callee chain from inside ``fn``.

        Returns ``(module, function, offset)`` where ``offset`` is the
        positional-parameter shift between call-site arguments and the
        callee's parameter list (1 for bound ``self.m()`` calls), or
        ``None`` when the callee is not a program-local function.
        """
        if not chain:
            return None
        if chain[0] in ("self", "cls") and fn.cls and len(chain) == 2:
            target = mod.functions.get(f"{fn.cls}.{chain[1]}")
            if target is not None:
                return (mod, target, 1)
            return None
        if len(chain) == 1:
            name = chain[0]
            qual = fn.local_defs.get(name)
            if qual is not None and qual in mod.functions:
                return (mod, mod.functions[qual], 0)
            module_fn = mod.functions.get("<module>")
            if module_fn is not None:
                qual = module_fn.local_defs.get(name)
                if qual is not None and qual in mod.functions:
                    return (mod, mod.functions[qual], 0)
            imp = mod.from_imports.get(name)
            if imp is not None:
                target_mod = self.modules.get(imp[0])
                if target_mod is not None and imp[1] in target_mod.functions:
                    return (target_mod, target_mod.functions[imp[1]], 0)
            return None
        for split in range(len(chain) - 1, 0, -1):
            head, rest = chain[:split], chain[split:]
            target_mod = self._module_for(mod, head)
            if target_mod is None:
                continue
            target = target_mod.functions.get(".".join(rest))
            if target is not None:
                return (target_mod, target, 0)
        return None

    def _module_for(self, mod: ModuleIR, head: tuple) -> ModuleIR | None:
        dotted = ".".join(head)
        if dotted in mod.plain_imports and dotted in self.modules:
            return self.modules[dotted]
        if len(head) == 1:
            aliased = mod.alias_imports.get(head[0])
            if aliased is not None and aliased in self.modules:
                return self.modules[aliased]
            imp = mod.from_imports.get(head[0])
            if imp is not None:
                name = f"{imp[0]}.{imp[1]}"
                if name in self.modules:
                    return self.modules[name]
        return None

    # -- summaries --------------------------------------------------------
    def _collect_attr_releases(self) -> None:
        for mod, fn in self.iter_functions():
            for node in flatten(fn.body):
                if (
                    isinstance(node, OpNode)
                    and node.kind == "finish"
                    and node.request
                    and "." in node.request
                ):
                    self.attr_releases.add(node.request.rsplit(".", 1)[-1])

    def _fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for mod, fn in self.iter_functions():
                key = (mod.module, fn.qualname)
                new = self._summarize(mod, fn)
                if new != self.summaries.get(key, _EMPTY):
                    self.summaries[key] = new
                    changed = True

    def _summarize(self, mod: ModuleIR, fn: FuncIR) -> Summary:
        # May-analysis over the flattened body: alias sets only grow, so
        # a single in-order pass per fixpoint round suffices.
        alias: dict[str, frozenset] = {
            p: frozenset({i}) for i, p in enumerate(fn.params)
        }
        request_names: set[str] = set()
        started: dict[str, frozenset] = {}  # request name -> param buffers
        has_collective = False
        site: tuple = ()
        returns_request = False
        finishes: set[int] = set()
        starts_on: set[int] = set()
        returns: set[int] = set()

        def params_of(names) -> frozenset:
            hit: frozenset = frozenset()
            for name in names:
                hit |= alias.get(name, frozenset())
            return hit

        for node in flatten(fn.body):
            if isinstance(node, OpNode):
                if node.kind == "collective":
                    if not has_collective:
                        has_collective = True
                        site = (node.op, mod.path, node.line)
                elif node.kind == "start":
                    buffer_params = params_of(node.buffers)
                    if node.escape == "return":
                        returns_request = True
                        starts_on |= buffer_params
                    for bind in node.binds:
                        if "." not in bind:
                            request_names.add(bind)
                            started[bind] = buffer_params
                elif node.kind == "finish":
                    if node.request and "." not in node.request:
                        finishes |= alias.get(node.request, frozenset())
            elif isinstance(node, CallNode):
                resolved = self.resolve(mod, fn, node.callee)
                if resolved is None:
                    continue
                cmod, callee, offset = resolved
                summary = self.summaries.get(
                    (cmod.module, callee.qualname), _EMPTY
                )
                if summary.has_collective and not has_collective:
                    has_collective = True
                    site = summary.collective_site
                arg_buffers: frozenset = frozenset()
                for i, roots in enumerate(node.argroots):
                    callee_param = i + offset
                    hit = params_of(roots)
                    if callee_param in summary.finishes_params:
                        finishes |= hit
                    if callee_param in summary.starts_on_params:
                        arg_buffers |= hit
                    if callee_param in summary.returns_params:
                        for bind in node.binds:
                            if "." not in bind:
                                alias[bind] = alias.get(
                                    bind, frozenset()
                                ) | hit
                if summary.returns_request:
                    if node.escape == "return":
                        returns_request = True
                        starts_on |= arg_buffers
                    for bind in node.binds:
                        if "." not in bind:
                            request_names.add(bind)
                            started[bind] = arg_buffers
            elif isinstance(node, ReturnNode):
                root = node.value_root
                if root is None:
                    continue
                returns |= alias.get(root, frozenset())
                if root in request_names:
                    returns_request = True
                    starts_on |= started.get(root, frozenset())
            elif node.t == "alias":
                alias[node.target] = alias.get(
                    node.target, frozenset()
                ) | alias.get(node.source, frozenset())
                if node.source in request_names:
                    request_names.add(node.target)
                    started[node.target] = started.get(
                        node.source, frozenset()
                    )
        return Summary(
            has_collective=has_collective,
            collective_site=site,
            returns_request=returns_request,
            finishes_params=frozenset(finishes),
            starts_on_params=frozenset(starts_on),
            returns_params=frozenset(returns),
        )

"""Command-line driver: ``python -m repro.lint [paths...]``.

Exit codes: ``0`` clean (after suppressions and baseline), ``1`` findings
reported, ``2`` usage or internal error -- the semantics CI keys off.
The same arguments are mounted as the ``repro-kron lint`` subcommand by
:mod:`repro.cli`.

Runs the full incremental engine: file rules plus the whole-program
protocol rules, with per-file results cached content-addressed under
``--cache-dir`` (default ``.repro-lint-cache``; disable with
``--no-cache``).  ``--sarif FILE`` additionally writes a SARIF 2.1.0
report of the post-baseline findings for CI code-scanning upload.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.baseline import filter_baseline, load_baseline, write_baseline
from repro.lint.cache import DEFAULT_CACHE_DIR
from repro.lint.core import Finding, all_program_rules, all_rules
from repro.lint.engine import analyze_paths

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Mount the lint options on an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        dest="output_format", help="report format",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings fingerprinted in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write findings (after baseline filtering) as SARIF 2.1.0",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"incremental analysis cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache (analyze every file fresh)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print cache reuse statistics to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )


def _print_rules() -> None:
    for rule in all_rules():
        scope = (
            f" [scope: {', '.join(rule.scope_dirs)}/]" if rule.scope_dirs else ""
        )
        print(f"{rule.name:<22} {rule.severity:<8} {rule.description}{scope}")
    for rule in all_program_rules():
        print(
            f"{rule.name:<22} {rule.severity:<8} "
            f"[whole-program] {rule.description}"
        )


def _report(findings: list[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
        return
    for f in findings:
        print(f.format_human())
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        print(f"\n{len(findings)} finding(s): {errors} error(s), "
              f"{warnings} warning(s)")
    else:
        print("no findings")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        _print_rules()
        return 0
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    cache_dir = None if getattr(args, "no_cache", False) else getattr(
        args, "cache_dir", DEFAULT_CACHE_DIR
    )
    try:
        findings, stats = analyze_paths(
            args.paths, select=select, cache_dir=cache_dir
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "stats", False):
        print(
            f"lint: {stats['files']} file(s), {stats['reused']} reused, "
            f"{stats['analyzed']} analyzed",
            file=sys.stderr,
        )
    if args.write_baseline:
        count = write_baseline(args.write_baseline, findings)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        findings = filter_baseline(findings, baseline)
    if getattr(args, "sarif", None):
        from repro.lint.sarif import write_sarif

        write_sarif(args.sarif, findings)
    _report(findings, args.output_format)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="SPMD correctness static analysis for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))

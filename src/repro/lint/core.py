"""Rule framework for the SPMD correctness linter.

A *rule* is a small AST pass: it receives a parsed module plus a
:class:`LintContext` and yields :class:`Finding` objects.  Rules register
themselves in a module-level registry via the :func:`register` decorator so
the CLI and tests discover them uniformly.

Suppressions
------------
Findings can be silenced in source with trailing comments::

    comm.barrier()          # repro-lint: disable=collective-symmetry
    buf[0] = 1              # repro-lint: disable=all

and file-wide (anywhere in the file, conventionally near the top)::

    # repro-lint: disable-file=dtype-overflow

Multiple rule names are comma-separated.  Suppression is applied centrally
by :func:`lint_source` after the rules run, so rules never need to know
about it.

Scoping
-------
A rule may declare ``scope_dirs``: it then only fires on files whose path
contains one of those directory components (the dtype and determinism
families only apply to the Kronecker index/ground-truth code, per the
invariants they encode).
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Marker prefix for suppression comments.
_PRAGMA = "repro-lint:"

#: Severities in increasing order of badness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``snippet`` is the stripped source line the finding anchors to; the
    baseline fingerprints findings by ``(path, rule, snippet, occurrence)``
    so they survive unrelated line drift.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def format_human(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class LintContext:
    """Per-file state handed to every rule."""

    path: str
    source: str
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.name,
            severity=rule.severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )


class Rule(ABC):
    """Base class for lint rules.

    Subclasses set ``name`` (the suppression/selection identifier),
    ``severity`` (``"error"`` or ``"warning"``), a one-line
    ``description``, and optionally ``scope_dirs`` restricting which
    directories the rule applies to.
    """

    name: str = ""
    severity: str = "warning"
    description: str = ""
    #: Directory components the rule is limited to; empty = everywhere.
    scope_dirs: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.scope_dirs:
            return True
        parts = Path(path).parts
        return any(d in parts for d in self.scope_dirs)

    @abstractmethod
    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        """Yield findings for one parsed module."""


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.name} has invalid severity {cls.severity!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ``select``."""
    # Import for side effect: rule modules self-register on first use.
    import repro.lint.rules  # noqa: F401

    if select is None:
        names = sorted(_REGISTRY)
    else:
        names = list(select)
        unknown = [n for n in names if n not in _REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[n]() for n in names]


# --------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------- #
def _parse_pragma(comment: str) -> tuple[str, set[str]] | None:
    """Parse one ``repro-lint:`` pragma; returns (kind, rule names)."""
    text = comment.split(_PRAGMA, 1)[1].strip()
    for kind in ("disable-file", "disable"):
        if text.startswith(kind + "="):
            names = {
                n.strip() for n in text[len(kind) + 1 :].split(",") if n.strip()
            }
            return kind, names
    return None


def _collect_suppressions(
    lines: list[str],
) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-wide suppressed rule names from pragma comments."""
    by_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        if _PRAGMA not in line:
            continue
        hash_pos = line.find("#")
        if hash_pos < 0 or _PRAGMA not in line[hash_pos:]:
            continue
        parsed = _parse_pragma(line[hash_pos:])
        if parsed is None:
            continue
        kind, names = parsed
        if kind == "disable-file":
            whole_file |= names
        else:
            by_line.setdefault(lineno, set()).update(names)
    return by_line, whole_file


def _suppressed(
    finding: Finding,
    by_line: dict[int, set[str]],
    whole_file: set[str],
) -> bool:
    for names in (whole_file, by_line.get(finding.line, ())):
        if finding.rule in names or "all" in names:
            return True
    return False


# --------------------------------------------------------------------- #
# drivers
# --------------------------------------------------------------------- #
def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns findings sorted by position."""
    rules = list(rules) if rules is not None else all_rules()
    ctx = LintContext(path=path, source=source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="parse-error",
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"could not parse file: {exc.msg}",
                snippet=ctx.snippet(exc.lineno or 1),
            )
        ]
    by_line, whole_file = _collect_suppressions(ctx.lines)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for f in rule.check(tree, ctx):
            if not _suppressed(f, by_line, whole_file):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Path, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one file (path recorded relative to the current directory)."""
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return lint_source(text, path=rel.as_posix(), rules=rules)


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    rules = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for path in _iter_python_files(Path(p) for p in paths):
        findings.extend(lint_file(path, rules=rules))
    return findings

"""Rule framework for the SPMD correctness linter.

A *rule* is a small AST pass: it receives a parsed module plus a
:class:`LintContext` and yields :class:`Finding` objects.  Rules register
themselves in a module-level registry via the :func:`register` decorator so
the CLI and tests discover them uniformly.

Suppressions
------------
Findings can be silenced in source with trailing comments::

    comm.barrier()          # repro-lint: disable=collective-symmetry
    buf[0] = 1              # repro-lint: disable=all

and file-wide (anywhere in the file, conventionally near the top)::

    # repro-lint: disable-file=dtype-overflow

Multiple rule names are comma-separated.  Suppression is applied centrally
by :func:`lint_source` after the rules run, so rules never need to know
about it.

Scoping
-------
A rule may declare ``scope_dirs``: it then only fires on files whose path
contains one of those directory components (the dtype and determinism
families only apply to the Kronecker index/ground-truth code, per the
invariants they encode).
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "ProgramRule",
    "register",
    "register_program",
    "all_rules",
    "all_program_rules",
    "known_rule_names",
    "resolve_selection",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Marker prefix for suppression comments.
_PRAGMA = "repro-lint:"

#: Severities in increasing order of badness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``snippet`` is the stripped source line the finding anchors to and
    ``context`` its nearest non-blank neighbour lines; the baseline
    fingerprints findings by ``(rule, snippet, context, occurrence)`` so
    they survive unrelated line drift *and* file moves.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    context: str = ""

    def format_human(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "context": self.context,
        }

    def with_path(self, path: str) -> "Finding":
        """Copy of this finding re-anchored to ``path`` (cache remapping)."""
        if path == self.path:
            return self
        return Finding(
            rule=self.rule,
            severity=self.severity,
            path=path,
            line=self.line,
            col=self.col,
            message=self.message,
            snippet=self.snippet,
            context=self.context,
        )


@dataclass
class LintContext:
    """Per-file state handed to every rule."""

    path: str
    source: str
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def context_of(self, line: int) -> str:
        """Nearest non-blank neighbour lines of ``line``.

        This is the *content context* baseline fingerprints mix in: it
        pins a finding to its surroundings rather than its file path, so
        fingerprints survive file moves but not edits to the code around
        the finding.
        """

        def nearest(start: int, step: int) -> str:
            i = start
            while 1 <= i <= len(self.lines):
                text = self.lines[i - 1].strip()
                if text:
                    return text
                i += step
            return ""

        return nearest(line - 1, -1) + "␞" + nearest(line + 1, 1)

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.name,
            severity=rule.severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
            context=self.context_of(line),
        )


class Rule(ABC):
    """Base class for lint rules.

    Subclasses set ``name`` (the suppression/selection identifier),
    ``severity`` (``"error"`` or ``"warning"``), a one-line
    ``description``, and optionally ``scope_dirs`` restricting which
    directories the rule applies to.
    """

    name: str = ""
    severity: str = "warning"
    description: str = ""
    #: Directory components the rule is limited to; empty = everywhere.
    scope_dirs: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.scope_dirs:
            return True
        parts = Path(path).parts
        return any(d in parts for d in self.scope_dirs)

    @abstractmethod
    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        """Yield findings for one parsed module."""


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.name} has invalid severity {cls.severity!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered file rules, optionally restricted to ``select``."""
    # Import for side effect: rule modules self-register on first use.
    import repro.lint.rules  # noqa: F401

    if select is None:
        names = sorted(_REGISTRY)
    else:
        names = list(select)
        unknown = [n for n in names if n not in _REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[n]() for n in names]


class ProgramRule(ABC):
    """Base class for whole-program rules.

    Unlike :class:`Rule`, a program rule sees *every* analyzed module at
    once: its :meth:`check` receives a
    :class:`repro.lint.callgraph.Program` built from the per-file
    communication IR (:mod:`repro.lint.ir`), so it can follow collective
    sequences and request lifetimes across function and module
    boundaries.  Program rules share the suppression, baseline, and
    ``--select`` machinery with file rules.
    """

    name: str = ""
    severity: str = "warning"
    description: str = ""

    @abstractmethod
    def check(self, program) -> Iterable[Finding]:
        """Yield findings for one whole program."""


_PROGRAM_REGISTRY: dict[str, type[ProgramRule]] = {}


def register_program(cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator adding a program rule to the global registry."""
    if not cls.name:
        raise ValueError(f"program rule {cls.__name__} has no name")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.name} has invalid severity {cls.severity!r}")
    if cls.name in _REGISTRY:
        raise ValueError(f"rule name {cls.name} already taken by a file rule")
    _PROGRAM_REGISTRY[cls.name] = cls
    return cls


def all_program_rules(select: Iterable[str] | None = None) -> list[ProgramRule]:
    """Instantiate registered program rules, optionally restricted."""
    import repro.lint.rules  # noqa: F401

    names = sorted(_PROGRAM_REGISTRY) if select is None else list(select)
    return [_PROGRAM_REGISTRY[n]() for n in names if n in _PROGRAM_REGISTRY]


def known_rule_names() -> list[str]:
    """Every selectable rule name, file-level and program-level."""
    import repro.lint.rules  # noqa: F401

    return sorted(set(_REGISTRY) | set(_PROGRAM_REGISTRY))


def resolve_selection(
    select: Iterable[str] | None = None,
) -> tuple[list[Rule], list[ProgramRule]]:
    """Split a ``--select`` list into (file rules, program rules).

    Raises ``ValueError`` naming the unknown entries *and* the full valid
    rule list when any selected name matches neither registry -- a
    misspelled ``--select`` must fail loudly, not run zero rules.
    """
    import repro.lint.rules  # noqa: F401

    if select is None:
        return all_rules(), all_program_rules()
    names = list(select)
    unknown = [
        n for n in names if n not in _REGISTRY and n not in _PROGRAM_REGISTRY
    ]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(sorted(set(unknown)))}; "
            f"known: {', '.join(known_rule_names())}"
        )
    file_rules = [_REGISTRY[n]() for n in names if n in _REGISTRY]
    program_rules = [
        _PROGRAM_REGISTRY[n]() for n in names if n in _PROGRAM_REGISTRY
    ]
    return file_rules, program_rules


# --------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------- #
def _parse_pragma(comment: str) -> tuple[str, set[str]] | None:
    """Parse one ``repro-lint:`` pragma; returns (kind, rule names)."""
    text = comment.split(_PRAGMA, 1)[1].strip()
    for kind in ("disable-file", "disable"):
        if text.startswith(kind + "="):
            names = {
                n.strip() for n in text[len(kind) + 1 :].split(",") if n.strip()
            }
            return kind, names
    return None


def _stmt_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Physical line spans of multi-line statements.

    For simple statements the span is ``lineno..end_lineno``; for
    compound statements it covers only the *header* (everything before
    the first statement of the first nested block), so a pragma inside
    an ``if`` body never suppresses findings on the ``if`` line itself.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.excepthandler)):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        for block in ("body", "orelse", "finalbody", "handlers"):
            children = getattr(node, block, None)
            if isinstance(children, list) and children:
                end = min(end, children[0].lineno - 1)
        if end > start:
            spans.append((start, end))
    return spans


def _collect_suppressions(
    lines: list[str],
    tree: ast.Module | None = None,
) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-wide suppressed rule names from pragma comments.

    When ``tree`` is given, a pragma on *any* physical line of a
    multi-line statement suppresses findings reported anywhere in that
    statement (rules anchor findings to the statement's first line, so a
    trailing pragma on the closing paren must still apply).
    """
    by_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        if _PRAGMA not in line:
            continue
        hash_pos = line.find("#")
        if hash_pos < 0 or _PRAGMA not in line[hash_pos:]:
            continue
        parsed = _parse_pragma(line[hash_pos:])
        if parsed is None:
            continue
        kind, names = parsed
        if kind == "disable-file":
            whole_file |= names
        else:
            by_line.setdefault(lineno, set()).update(names)
    if tree is not None and by_line:
        for start, end in _stmt_spans(tree):
            collected: set[str] = set()
            for lineno in range(start, end + 1):
                collected |= by_line.get(lineno, set())
            if collected:
                for lineno in range(start, end + 1):
                    by_line.setdefault(lineno, set()).update(collected)
    return by_line, whole_file


def _suppressed(
    finding: Finding,
    by_line: dict[int, set[str]],
    whole_file: set[str],
) -> bool:
    for names in (whole_file, by_line.get(finding.line, ())):
        if finding.rule in names or "all" in names:
            return True
    return False


# --------------------------------------------------------------------- #
# drivers
# --------------------------------------------------------------------- #
def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns findings sorted by position."""
    rules = list(rules) if rules is not None else all_rules()
    ctx = LintContext(path=path, source=source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="parse-error",
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"could not parse file: {exc.msg}",
                snippet=ctx.snippet(exc.lineno or 1),
            )
        ]
    by_line, whole_file = _collect_suppressions(ctx.lines, tree)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for f in rule.check(tree, ctx):
            if not _suppressed(f, by_line, whole_file):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Path, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one file (path recorded relative to the current directory)."""
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return lint_source(text, path=rel.as_posix(), rules=rules)


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield each ``.py`` file exactly once, even under overlapping paths.

    ``repro-kron lint src src/repro`` must not double-report findings,
    so files are deduplicated on their resolved absolute path (the first
    spelling encountered wins).
    """
    seen: set[Path] = set()
    for p in paths:
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            continue
        for candidate in candidates:
            key = candidate.resolve()
            if key in seen:
                continue
            seen.add(key)
            yield candidate


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    With ``rules=None`` this runs the full analysis -- all file rules
    plus the whole-program protocol rules over the communication IR of
    every file in ``paths`` (uncached; the CLI adds the incremental
    cache on top via :mod:`repro.lint.engine`).  Passing an explicit
    ``rules`` list restricts the run to those file rules only.
    """
    if rules is not None:
        rules = list(rules)
        findings: list[Finding] = []
        for path in _iter_python_files(Path(p) for p in paths):
            findings.extend(lint_file(path, rules=rules))
        return findings
    from repro.lint.engine import analyze_paths

    findings, _stats = analyze_paths(paths)
    return findings

"""Minimal SARIF 2.1.0 writer for CI code-scanning upload.

Emits one run with the full rule catalogue (file and program rules) in
``tool.driver.rules`` and one result per finding, carrying the baseline
fingerprint under ``fingerprints`` so SARIF consumers track findings
across moves the same way our own baseline does.  Output is fully
deterministic -- findings are already sorted by the engine and the JSON
is dumped with sorted keys -- so CI can assert byte-identical reports
between cold- and warm-cache runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.lint.baseline import fingerprints
from repro.lint.core import Finding, all_program_rules, all_rules

__all__ = ["to_sarif", "write_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"warning": "warning", "error": "error"}


def _rule_catalogue() -> list[dict]:
    rules = []
    for rule in [*all_rules(), *all_program_rules()]:
        rules.append(
            {
                "id": rule.name,
                "defaultConfiguration": {
                    "level": _LEVELS.get(rule.severity, "warning")
                },
                "shortDescription": {"text": rule.description or rule.name},
            }
        )
    rules.sort(key=lambda r: r["id"])
    return rules


def to_sarif(findings: Iterable[Finding]) -> dict:
    """Build the SARIF log object for a list of findings."""
    results = []
    for finding, fingerprint in fingerprints(findings):
        results.append(
            {
                "ruleId": finding.rule,
                "level": _LEVELS.get(finding.severity, "warning"),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                                "snippet": {"text": finding.snippet},
                            },
                        }
                    }
                ],
                "fingerprints": {"reproLint/v2": fingerprint},
            }
        )
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-kron/lint"
                        ),
                        "rules": _rule_catalogue(),
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///./"}
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def write_sarif(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write the SARIF report; bytes are deterministic for a given
    finding list."""
    payload = json.dumps(to_sarif(findings), indent=2, sort_keys=True)
    Path(path).write_text(payload + "\n", encoding="utf-8")

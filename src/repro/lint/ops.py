"""Shared comm-op tables and AST helpers for every lint layer.

This is a *leaf* module: the file rules import it through their
historical :mod:`repro.lint.rules.common` path, and the whole-program
layers (:mod:`repro.lint.ir`, :mod:`repro.lint.callgraph`) import it
directly -- importing the rule package from the IR extractor would be
circular (rules -> protocol -> callgraph -> ir -> rules).
"""

from __future__ import annotations

import ast

__all__ = [
    "COLLECTIVE_OPS",
    "RECEIVING_OPS",
    "INFLIGHT_OPS",
    "REQUEST_OPS",
    "FINISH_OPS",
    "MUTATOR_METHODS",
    "attr_chain",
    "base_name",
    "call_method",
    "contains_rank_ref",
    "walk_calls",
    "walk_scope",
]

#: The collective operations of :class:`repro.distributed.comm.Communicator`.
COLLECTIVE_OPS = frozenset(
    {"barrier", "bcast", "gather", "allgather", "allreduce", "alltoall", "scatter"}
)

#: Operations whose return value is a received (possibly shared) buffer.
RECEIVING_OPS = frozenset(
    {"recv", "alltoall", "allgather", "gather", "bcast", "scatter",
     "alltoall_finish"}
)

#: Nonblocking operations whose buffer argument stays owned by the
#: runtime until the returned request is waited on.
INFLIGHT_OPS = frozenset({"isend", "alltoall_start"})

#: Nonblocking operations returning a :class:`Request` that must be
#: completed (``INFLIGHT_OPS`` plus the buffer-less ``irecv``).
REQUEST_OPS = INFLIGHT_OPS | {"irecv"}

#: Operations that complete an in-flight request.
FINISH_OPS = frozenset({"wait", "alltoall_finish"})

#: Method names that mutate their receiver in place (ndarray / list /
#: dict / set mutators that matter for message payloads).
MUTATOR_METHODS = frozenset(
    {
        "sort", "fill", "resize", "put", "itemset", "partition", "byteswap",
        "setflags", "append", "extend", "insert", "remove", "pop", "clear",
        "update", "reverse", "setdefault", "popitem", "add", "discard",
    }
)


def attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """Dotted-name chain of a Name/Attribute expression.

    ``np.random.seed`` -> ``("np", "random", "seed")``; ``None`` when the
    expression is not a plain dotted name (e.g. a call result attribute).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def base_name(node: ast.AST) -> str | None:
    """Root variable name of an lvalue-ish expression.

    Peels subscripts and attribute accesses: ``buf[0].real`` -> ``"buf"``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_method(node: ast.Call) -> str | None:
    """Method name of an ``obj.method(...)`` call, else ``None``."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def contains_rank_ref(node: ast.AST) -> bool:
    """Does the expression mention a rank identity (``.rank``/``rank``)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "_rank"):
            return True
        if isinstance(sub, ast.Name) and sub.id in ("rank", "_rank"):
            return True
    return False


def walk_calls(node: ast.AST):
    """Yield every Call node in an expression/statement subtree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def walk_scope(body: list[ast.stmt]):
    """Walk a statement list without descending into nested scopes.

    Yields every node of the given block, including the ``FunctionDef``/
    ``ClassDef`` statements themselves but nothing inside them -- the
    scoped analogue of :func:`ast.walk` for name-binding analyses.
    """
    pending: list[ast.AST] = list(body)
    while pending:
        node = pending.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pending.extend(ast.iter_child_nodes(node))

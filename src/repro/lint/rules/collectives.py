"""collective-symmetry: every rank must run the same collective sequence.

The SPMD deadlock class this catches::

    if comm.rank == 0:
        comm.barrier()          # rank 0 waits forever: peers never arrive

and its sneakier sibling, the rank-guarded early exit::

    if comm.rank == 0:
        return                  # rank 0 leaves the rank program...
    comm.allreduce(x, op)       # ...so this collective hangs on 1..R-1

Detection is lexical and conservative: a collective call is flagged when
(a) any enclosing ``if``/``while`` test mentions a rank identity, or
(b) it appears after a rank-guarded statement that exits the enclosing
block asymmetrically (one branch returns/raises/breaks, the other does
not).  Point-to-point ``send``/``recv`` are intentionally exempt --
rank-dependent p2p is the normal SPMD idiom (and is how the collectives
themselves are implemented in :mod:`repro.distributed.comm`).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, register
from repro.lint.rules.common import COLLECTIVE_OPS, call_method, contains_rank_ref

__all__ = ["CollectiveSymmetryRule"]

#: (kind, line) describing why the current position is rank-dependent.
_Guard = tuple[str, int]

_EXITS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


def _block_exits(stmts: list[ast.stmt]) -> bool:
    """Does the block unconditionally leave the enclosing sequence?"""
    return any(isinstance(s, _EXITS) for s in stmts)


@register
class CollectiveSymmetryRule(Rule):
    name = "collective-symmetry"
    severity = "error"
    description = (
        "collective calls reachable only under rank-dependent control "
        "flow deadlock the ranks that skip them"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        self._ctx = ctx
        self._out: list[Finding] = []
        self._scan_block(tree.body, None)
        return self._out

    # ---- block walking --------------------------------------------------
    def _scan_block(self, stmts: list[ast.stmt], guard: _Guard | None) -> None:
        for st in stmts:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # Fresh scope: a function defined under a rank guard is not
                # itself a collective call site.
                self._scan_block(st.body, None)
            elif isinstance(st, ast.If):
                self._scan_calls(st.test, guard)
                rank_test = contains_rank_ref(st.test)
                inner = ("if", st.lineno) if rank_test else guard
                self._scan_block(st.body, inner)
                self._scan_block(st.orelse, inner)
                if rank_test and _block_exits(st.body) != _block_exits(st.orelse):
                    # Asymmetric exit: statements after this point run on a
                    # rank-dependent subset of the world.
                    guard = guard or ("early-exit", st.lineno)
            elif isinstance(st, ast.While):
                self._scan_calls(st.test, guard)
                rank_test = contains_rank_ref(st.test)
                inner = ("while", st.lineno) if rank_test else guard
                self._scan_block(st.body, inner)
                self._scan_block(st.orelse, inner)
            elif isinstance(st, (ast.For, ast.AsyncFor)):
                self._scan_calls(st.iter, guard)
                self._scan_block(st.body, guard)
                self._scan_block(st.orelse, guard)
            elif isinstance(st, (ast.With, ast.AsyncWith)):
                for item in st.items:
                    self._scan_calls(item.context_expr, guard)
                self._scan_block(st.body, guard)
            elif isinstance(st, ast.Try):
                self._scan_block(st.body, guard)
                for handler in st.handlers:
                    self._scan_block(handler.body, guard)
                self._scan_block(st.orelse, guard)
                self._scan_block(st.finalbody, guard)
            else:
                self._scan_calls(st, guard)

    # ---- call inspection ------------------------------------------------
    def _scan_calls(self, node: ast.AST, guard: _Guard | None) -> None:
        if guard is None:
            return
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            op = call_method(call)
            if op in COLLECTIVE_OPS:
                self._out.append(
                    self._ctx.finding(self, call, self._message(op, guard))
                )

    @staticmethod
    def _message(op: str, guard: _Guard) -> str:
        kind, line = guard
        if kind == "early-exit":
            where = f"follows a rank-guarded early exit at line {line}"
        else:
            where = f"is guarded by a rank-dependent '{kind}' at line {line}"
        return (
            f"collective '{op}' {where}; every rank must execute the same "
            f"collective sequence or the skipped ranks deadlock"
        )

"""timeout-literal: distributed timeouts must derive from ``recv_timeout()``.

The runtime's one tunable deadline is ``REPRO_RECV_TIMEOUT`` (read at call
time by :func:`repro.distributed.comm.recv_timeout`); every other wait --
queue polls, join deadlines, liveness grace -- is derived from it so that
pinning one environment variable rescales the whole failure-detection
ladder (chaos runs pin it to ~2s, production leaves the 60s default).  A
bare numeric ``timeout=3.0`` hidden in a call sidesteps that: it neither
scales down for fault-injection runs nor up for slow machines, and it is
exactly how the historical hardcoded 300s/30s launcher waits crept in.

Scoped to ``distributed/``, this rule flags any call passing a plain
numeric literal to a ``timeout`` keyword (``timeout=`` or
``timeout_s=``).  ``None`` and ``0`` are exempt (``None`` means "no
timeout" and ``0`` means "non-blocking" -- neither is a duration to
scale); named constants, arithmetic on ``recv_timeout()`` /
``poll_interval()``, and variables all pass.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, register

__all__ = ["TimeoutLiteralRule"]

_TIMEOUT_KWARGS = frozenset({"timeout", "timeout_s"})


def _bare_duration_literal(expr: ast.expr) -> bool:
    """A plain numeric constant that is a real duration (not None/0/bool)."""
    if not isinstance(expr, ast.Constant):
        return False
    value = expr.value
    if value is None or isinstance(value, bool):
        return False
    return isinstance(value, (int, float)) and value != 0


@register
class TimeoutLiteralRule(Rule):
    name = "timeout-literal"
    severity = "error"
    description = (
        "distributed code must derive timeouts from recv_timeout(), not "
        "bare numeric literals"
    )
    scope_dirs = ("distributed",)

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg in _TIMEOUT_KWARGS and _bare_duration_literal(
                    kw.value
                ):
                    out.append(
                        ctx.finding(
                            self,
                            kw.value,
                            f"bare numeric {kw.arg}={kw.value.value!r}: "
                            f"derive waits from recv_timeout() / "
                            f"poll_interval() so REPRO_RECV_TIMEOUT "
                            f"rescales the whole failure-detection ladder",
                        )
                    )
        return out

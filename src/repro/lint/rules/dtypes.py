"""dtype-overflow: Kronecker index arithmetic must stay in int64.

The product vertex id is ``p = i * n_B + k`` (Section II-A's alpha map);
for paper-scale factors ``p`` exceeds 2**31 long before it exceeds 2**63,
so any narrow intermediate silently wraps.  Two checks, scoped to the
index-carrying packages (``kronecker/`` and ``distributed/``):

* ``np.empty``/``np.zeros`` without an explicit ``dtype=`` -- the float64
  default is both wrong for indices and a waste of the exactness int64
  provides (Sanders et al., arXiv:1803.09021 make the same point for
  at-scale generators);
* index-shaped arithmetic (``a * b + c``) on a name bound to a provably
  narrow array (an explicit ``int32``/``float32``/... dtype or
  ``.astype(<narrow>)``).  Names of unknown dtype are not flagged -- the
  rule is a tripwire for visible narrowing, not a type checker.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, register
from repro.lint.rules.common import attr_chain, walk_scope as _walk_scope

__all__ = ["DtypeOverflowRule"]

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

_ALLOC_FUNCS = frozenset({"empty", "zeros"})
_NUMPY_NAMES = frozenset({"np", "numpy"})

#: dtype spellings wide enough for product vertex ids.
_WIDE_DTYPES = frozenset(
    {"int64", "intp", "uint64", "longlong", "ulonglong", "i8", "u8",
     "<i8", "<u8", "int_", "int"}
)


def _dtype_token(node: ast.expr) -> str | None:
    """Terminal identifier/string of a dtype expression, if recognizable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    chain = attr_chain(node)
    if chain:
        return chain[-1]
    if isinstance(node, ast.Call):
        # np.dtype("int32") and friends: recurse into the argument.
        ch = attr_chain(node.func)
        if ch and ch[-1] == "dtype" and node.args:
            return _dtype_token(node.args[0])
    return None


def _is_narrow_dtype(node: ast.expr) -> bool:
    """True when the dtype expression names a type narrower than int64."""
    token = _dtype_token(node)
    if token is None:
        return False  # unknown (a variable): give the benefit of the doubt
    return token not in _WIDE_DTYPES


def _narrow_binding(value: ast.expr) -> str | None:
    """If ``value`` provably produces a narrow array, describe how."""
    for call in ast.walk(value):
        if not isinstance(call, ast.Call):
            continue
        if isinstance(call.func, ast.Attribute) and call.func.attr == "astype":
            if call.args and _is_narrow_dtype(call.args[0]):
                return f"astype({_dtype_token(call.args[0])})"
        chain = attr_chain(call.func)
        if chain and chain[0] in _NUMPY_NAMES:
            for kw in call.keywords:
                if kw.arg == "dtype" and _is_narrow_dtype(kw.value):
                    return f"{'.'.join(chain)}(dtype={_dtype_token(kw.value)})"
    return None


@register
class DtypeOverflowRule(Rule):
    name = "dtype-overflow"
    severity = "warning"
    description = (
        "Kronecker index arithmetic and allocations must be explicit int64; "
        "narrow dtypes silently wrap at paper scale"
    )
    scope_dirs = ("kronecker", "distributed", "skg")

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        self._ctx = ctx
        self._out: list[Finding] = []
        self._check_allocations(tree)
        self._check_index_arithmetic(tree)
        return self._out

    # ---- allocations without explicit dtype ------------------------------
    def _check_allocations(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if (
                chain
                and len(chain) == 2
                and chain[0] in _NUMPY_NAMES
                and chain[1] in _ALLOC_FUNCS
            ):
                if not any(kw.arg == "dtype" for kw in node.keywords):
                    self._out.append(
                        self._ctx.finding(
                            self,
                            node,
                            f"np.{chain[1]} without an explicit dtype "
                            f"defaults to float64; index buffers must be "
                            f"allocated as int64",
                        )
                    )

    # ---- narrow names in index-shaped arithmetic --------------------------
    def _check_index_arithmetic(self, tree: ast.Module) -> None:
        """Run the narrow-name check once per lexical scope.

        Name bindings are function-local; collecting them module-wide
        would let one function's wide rebinding of ``i`` mask another
        function's narrow ``i``.
        """
        for scope_body in self._iter_scopes(tree):
            self._check_scope_arithmetic(scope_body)

    @staticmethod
    def _iter_scopes(tree: ast.Module):
        pending: list[list[ast.stmt]] = [tree.body]
        while pending:
            body = pending.pop()
            yield body
            for node in _walk_scope(body):
                if isinstance(node, _SCOPES):
                    pending.append(node.body)

    def _check_scope_arithmetic(self, body: list[ast.stmt]) -> None:
        narrow = self._collect_narrow_names(body)
        if not narrow:
            return
        for node in _walk_scope(body):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
                continue
            if not any(
                isinstance(side, ast.BinOp) and isinstance(side.op, ast.Mult)
                for side in (node.left, node.right)
            ):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id in narrow:
                    how, line = narrow[sub.id]
                    self._out.append(
                        self._ctx.finding(
                            self,
                            node,
                            f"index arithmetic 'a * b + c' involves "
                            f"'{sub.id}', bound narrow via {how} at line "
                            f"{line}; Kronecker indices overflow anything "
                            f"below int64 at scale",
                        )
                    )
                    break  # one finding per expression

    @staticmethod
    def _collect_narrow_names(body: list[ast.stmt]) -> dict[str, tuple[str, int]]:
        narrow: dict[str, tuple[str, int]] = {}
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            how = _narrow_binding(value)
            for target in targets:
                if isinstance(target, ast.Name):
                    if how is not None:
                        narrow[target.id] = (how, node.lineno)
                    else:
                        narrow.pop(target.id, None)
        return narrow

"""Shared AST helpers for the lint rules.

The implementation lives in :mod:`repro.lint.ops` -- a leaf module with
no package side effects -- so that the IR extractor and call-graph
layers can use the same op tables without importing the rule package
(which would be circular: the rule package imports the protocol rules,
which import the call graph, which imports the IR).  This module
re-exports everything for the file rules' historical import path.
"""

from repro.lint.ops import (  # noqa: F401
    COLLECTIVE_OPS,
    FINISH_OPS,
    INFLIGHT_OPS,
    MUTATOR_METHODS,
    RECEIVING_OPS,
    REQUEST_OPS,
    attr_chain,
    base_name,
    call_method,
    contains_rank_ref,
    walk_calls,
    walk_scope,
)

__all__ = [
    "COLLECTIVE_OPS",
    "RECEIVING_OPS",
    "INFLIGHT_OPS",
    "REQUEST_OPS",
    "FINISH_OPS",
    "MUTATOR_METHODS",
    "attr_chain",
    "base_name",
    "call_method",
    "contains_rank_ref",
    "walk_calls",
    "walk_scope",
]

"""The SPMD rule families.

Importing this package registers every rule with the framework
registries (:func:`repro.lint.core.register` for file rules,
:func:`repro.lint.core.register_program` for whole-program rules):

``collective-symmetry`` (error)
    collectives reachable only under rank-dependent control flow deadlock
    the world.
``buffer-ownership`` (error)
    buffers received from collectives/``recv`` may be shared read-only
    views and must not be mutated in place.
``dtype-overflow`` (warning)
    Kronecker index arithmetic must stay int64; allocations in the index
    path need explicit dtypes.
``determinism`` (warning)
    ground-truth output must not depend on set iteration order, global
    ``np.random`` state, or time-derived seeds.
``timeout-literal`` (error)
    distributed waits must derive from ``recv_timeout()`` so one
    environment variable rescales the whole failure-detection ladder;
    bare numeric ``timeout=`` literals are flagged.
``wall-clock`` (warning)
    distributed code must take time from the injected clocks of
    :mod:`repro.telemetry.clock`, not ``time.time()`` /
    ``time.perf_counter()`` directly, so traces stay deterministic
    under a fake clock.

Whole-program rules (run over the communication IR of every analyzed
file at once; see :mod:`repro.lint.ir` and :mod:`repro.lint.callgraph`):

``protocol-divergence`` (error)
    a rank-guarded call reaches a collective down its call chain.
``protocol-leak`` (error)
    a nonblocking request is discarded, rebound, or left in flight on
    some path.
``protocol-inflight`` (error)
    a buffer put in flight through a helper is mutated before the
    request completes.
"""

from repro.lint.rules.buffers import BufferOwnershipRule
from repro.lint.rules.collectives import CollectiveSymmetryRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.dtypes import DtypeOverflowRule
from repro.lint.rules.protocol import (
    ProtocolDivergenceRule,
    ProtocolInflightRule,
    ProtocolLeakRule,
)
from repro.lint.rules.timeouts import TimeoutLiteralRule
from repro.lint.rules.wallclock import WallClockRule

__all__ = [
    "CollectiveSymmetryRule",
    "BufferOwnershipRule",
    "DtypeOverflowRule",
    "DeterminismRule",
    "TimeoutLiteralRule",
    "WallClockRule",
    "ProtocolDivergenceRule",
    "ProtocolLeakRule",
    "ProtocolInflightRule",
]

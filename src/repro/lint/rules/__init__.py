"""The six SPMD rule families.

Importing this package registers every rule with the framework registry
(:func:`repro.lint.core.register`):

``collective-symmetry`` (error)
    collectives reachable only under rank-dependent control flow deadlock
    the world.
``buffer-ownership`` (error)
    buffers received from collectives/``recv`` may be shared read-only
    views and must not be mutated in place.
``dtype-overflow`` (warning)
    Kronecker index arithmetic must stay int64; allocations in the index
    path need explicit dtypes.
``determinism`` (warning)
    ground-truth output must not depend on set iteration order, global
    ``np.random`` state, or time-derived seeds.
``timeout-literal`` (error)
    distributed waits must derive from ``recv_timeout()`` so one
    environment variable rescales the whole failure-detection ladder;
    bare numeric ``timeout=`` literals are flagged.
``wall-clock`` (warning)
    distributed code must take time from the injected clocks of
    :mod:`repro.telemetry.clock`, not ``time.time()`` /
    ``time.perf_counter()`` directly, so traces stay deterministic
    under a fake clock.
"""

from repro.lint.rules.buffers import BufferOwnershipRule
from repro.lint.rules.collectives import CollectiveSymmetryRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.dtypes import DtypeOverflowRule
from repro.lint.rules.timeouts import TimeoutLiteralRule
from repro.lint.rules.wallclock import WallClockRule

__all__ = [
    "CollectiveSymmetryRule",
    "BufferOwnershipRule",
    "DtypeOverflowRule",
    "DeterminismRule",
    "TimeoutLiteralRule",
    "WallClockRule",
]

"""buffer-ownership: never mutate a buffer received from the comm layer.

The zero-copy exchange of PR 1 made received buffers *shared*: the thread
backend passes arrays by reference and the process backend returns
read-only views into shared memory (the contract documented on
:meth:`repro.distributed.comm.Communicator.alltoall`).  An in-place edit
of a received entry therefore corrupts the sender's data (thread backend)
or raises ``ValueError: assignment destination is read-only`` only on the
one backend that happens to flag it (process backend) -- a latent,
backend-dependent bug.

This rule taints names bound to ``recv``/``alltoall``/``allgather``/
``gather``/``bcast``/``scatter`` results (including names bound by
unpacking, subscripting the result, or iterating over it) and flags:

* augmented assignment (``buf += x``, ``buf[0] *= 2``);
* subscript assignment (``buf[i] = x``) and subscript deletion;
* calls to in-place mutator methods (``buf.sort()``, ``buf.fill(0)``,
  ``incoming[0].resize(...)``, ``received.append(x)`` ...).

Rebinding a tainted name to anything else (``buf = buf.copy()``) clears
its taint; aliasing (``alias = buf``) propagates it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, register
from repro.lint.rules.common import (
    INFLIGHT_OPS,
    MUTATOR_METHODS as _MUTATORS,
    RECEIVING_OPS,
    base_name,
    call_method,
)

__all__ = ["BufferOwnershipRule", "InflightBufferRule"]


def _recv_op(value: ast.expr) -> str | None:
    """If ``value`` is (a subscript of) a receiving comm call, its op name."""
    while isinstance(value, (ast.Subscript, ast.Starred)):
        value = value.value
    if isinstance(value, ast.Call):
        op = call_method(value)
        if op in RECEIVING_OPS:
            return op
    return None


def _target_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment/loop target (incl. unpacking)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


@register
class BufferOwnershipRule(Rule):
    name = "buffer-ownership"
    severity = "error"
    description = (
        "buffers received from recv/alltoall/allgather may be shared "
        "read-only views; mutate only private copies"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        self._ctx = ctx
        self._out: list[Finding] = []
        self._scan_scope(tree.body)
        return self._out

    # ---- scope walking --------------------------------------------------
    def _scan_scope(self, stmts: list[ast.stmt]) -> None:
        """One function (or module) body: fresh taint environment."""
        self._scan_block(stmts, {})

    def _scan_block(
        self, stmts: list[ast.stmt], tainted: dict[str, tuple[str, int]]
    ) -> None:
        for st in stmts:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._scan_scope(st.body)
            elif isinstance(st, ast.Assign):
                self._handle_assign(st, tainted)
            elif isinstance(st, ast.AnnAssign) and st.value is not None:
                self._handle_assign_one(st.target, st.value, st, tainted)
            elif isinstance(st, ast.AugAssign):
                name = base_name(st.target)
                if name in tainted:
                    self._emit(st, name, tainted[name], "augmented assignment to")
            elif isinstance(st, ast.Delete):
                for tgt in st.targets:
                    if isinstance(tgt, ast.Subscript):
                        name = base_name(tgt)
                        if name in tainted:
                            self._emit(st, name, tainted[name], "deletion from")
            elif isinstance(st, (ast.For, ast.AsyncFor)):
                self._check_mutator_calls(st.iter, tainted)
                if self._iter_is_received(st.iter, tainted):
                    op_line = self._iter_origin(st.iter, tainted)
                    for name in _target_names(st.target):
                        tainted[name] = op_line
                self._scan_block(st.body, tainted)
                self._scan_block(st.orelse, tainted)
            elif isinstance(st, ast.If):
                self._check_mutator_calls(st.test, tainted)
                self._scan_block(st.body, tainted)
                self._scan_block(st.orelse, tainted)
            elif isinstance(st, ast.While):
                self._check_mutator_calls(st.test, tainted)
                self._scan_block(st.body, tainted)
                self._scan_block(st.orelse, tainted)
            elif isinstance(st, (ast.With, ast.AsyncWith)):
                self._scan_block(st.body, tainted)
            elif isinstance(st, ast.Try):
                self._scan_block(st.body, tainted)
                for handler in st.handlers:
                    self._scan_block(handler.body, tainted)
                self._scan_block(st.orelse, tainted)
                self._scan_block(st.finalbody, tainted)
            else:
                self._check_mutator_calls(st, tainted)

    # ---- assignment handling --------------------------------------------
    def _handle_assign(
        self, st: ast.Assign, tainted: dict[str, tuple[str, int]]
    ) -> None:
        for target in st.targets:
            self._handle_assign_one(target, st.value, st, tainted)

    def _handle_assign_one(
        self,
        target: ast.expr,
        value: ast.expr,
        st: ast.stmt,
        tainted: dict[str, tuple[str, int]],
    ) -> None:
        self._check_mutator_calls(value, tainted)
        op = _recv_op(value)
        alias = (
            tainted.get(value.id) if isinstance(value, ast.Name) else None
        )
        if isinstance(target, ast.Subscript):
            name = base_name(target)
            if name in tainted:
                self._emit(st, name, tainted[name], "item assignment into")
            return
        names = _target_names(target)
        for name in names:
            if op is not None:
                tainted[name] = (op, st.lineno)
            elif alias is not None:
                tainted[name] = alias
            else:
                tainted.pop(name, None)

    # ---- mutation detection ---------------------------------------------
    def _check_mutator_calls(
        self, node: ast.AST, tainted: dict[str, tuple[str, int]]
    ) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            method = call_method(call)
            if method not in _MUTATORS:
                continue
            receiver = call.func.value  # type: ignore[union-attr]
            direct = _recv_op(receiver)
            if direct is not None:
                # comm.recv(0).sort(): mutating the result without even
                # binding it
                self._emit(
                    call,
                    f"{direct}(...)",
                    (direct, receiver.lineno),
                    f"in-place '{method}()' on",
                )
                continue
            name = base_name(receiver)
            if name in tainted:
                self._emit(
                    call, name, tainted[name], f"in-place '{method}()' on"
                )

    def _iter_is_received(
        self, iter_expr: ast.expr, tainted: dict[str, tuple[str, int]]
    ) -> bool:
        if _recv_op(iter_expr) is not None:
            return True
        for sub in ast.walk(iter_expr):
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return True
        return False

    def _iter_origin(
        self, iter_expr: ast.expr, tainted: dict[str, tuple[str, int]]
    ) -> tuple[str, int]:
        op = _recv_op(iter_expr)
        if op is not None:
            return (op, iter_expr.lineno)
        for sub in ast.walk(iter_expr):
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return tainted[sub.id]
        return ("recv", iter_expr.lineno)

    def _emit(
        self, node: ast.AST, name: str, origin: tuple[str, int], action: str
    ) -> None:
        op, line = origin
        self._out.append(
            self._ctx.finding(
                self,
                node,
                f"{action} '{name}', which holds a buffer received from "
                f"{op}() at line {line}; received buffers may be shared "
                f"read-only views -- copy before mutating "
                f"(Communicator.alltoall contract)",
            )
        )


def _buffer_names(expr: ast.expr) -> list[str]:
    """Root names of the buffer(s) an expression passes to the runtime."""
    if isinstance(expr, (ast.List, ast.Tuple)):
        names: list[str] = []
        for elt in expr.elts:
            names.extend(_buffer_names(elt))
        return names
    name = base_name(expr)
    return [name] if name is not None else []


@register
class InflightBufferRule(Rule):
    """inflight-buffer: never mutate a buffer whose send is in flight.

    ``isend``/``alltoall_start`` hand the passed buffer to the runtime
    until the returned :class:`~repro.distributed.comm.Request` is waited
    on (the contract documented on that class): the thread backend passes
    it by reference to the receiver and a deferred-send backend may not
    have serialized it yet, so an in-place edit races the delivery.

    The rule taints the buffer names passed to a nonblocking send, maps
    the bound request name to them, and flags augmented assignment,
    subscript assignment/deletion, and in-place mutator calls on a
    tainted name until ``request.wait()`` or ``comm.alltoall_finish
    (request)`` releases it.  Rebinding a tainted name clears its taint
    (the name no longer reaches the in-flight buffer).
    """

    name = "inflight-buffer"
    severity = "error"
    description = (
        "buffers passed to isend/alltoall_start stay owned by the runtime "
        "until the request is waited on; mutate only after wait()/"
        "alltoall_finish()"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        self._ctx = ctx
        self._out: list[Finding] = []
        self._scan_scope(tree.body)
        return self._out

    # ---- scope walking --------------------------------------------------
    def _scan_scope(self, stmts: list[ast.stmt]) -> None:
        self._scan_block(stmts, {}, {})

    def _scan_block(
        self,
        stmts: list[ast.stmt],
        inflight: dict[str, tuple[str, int]],
        guards: dict[str, list[str]],
    ) -> None:
        for st in stmts:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._scan_scope(st.body)
            elif isinstance(st, ast.Assign):
                self._handle_assign(st, st.targets, st.value, inflight, guards)
            elif isinstance(st, ast.AnnAssign) and st.value is not None:
                self._handle_assign(st, [st.target], st.value, inflight, guards)
            elif isinstance(st, ast.AugAssign):
                self._process_calls(st.value, inflight, guards)
                name = base_name(st.target)
                if name in inflight:
                    self._emit(st, name, inflight[name], "augmented assignment to")
            elif isinstance(st, ast.Delete):
                for tgt in st.targets:
                    if isinstance(tgt, ast.Subscript):
                        name = base_name(tgt)
                        if name in inflight:
                            self._emit(st, name, inflight[name], "deletion from")
            elif isinstance(st, (ast.For, ast.AsyncFor)):
                self._process_calls(st.iter, inflight, guards)
                self._scan_block(st.body, inflight, guards)
                self._scan_block(st.orelse, inflight, guards)
            elif isinstance(st, (ast.If, ast.While)):
                self._process_calls(st.test, inflight, guards)
                self._scan_block(st.body, inflight, guards)
                self._scan_block(st.orelse, inflight, guards)
            elif isinstance(st, (ast.With, ast.AsyncWith)):
                for item in st.items:
                    self._process_calls(item.context_expr, inflight, guards)
                self._scan_block(st.body, inflight, guards)
            elif isinstance(st, ast.Try):
                self._scan_block(st.body, inflight, guards)
                for handler in st.handlers:
                    self._scan_block(handler.body, inflight, guards)
                self._scan_block(st.orelse, inflight, guards)
                self._scan_block(st.finalbody, inflight, guards)
            else:
                self._process_calls(st, inflight, guards)

    # ---- assignment handling --------------------------------------------
    def _handle_assign(
        self,
        st: ast.stmt,
        targets: list[ast.expr],
        value: ast.expr,
        inflight: dict[str, tuple[str, int]],
        guards: dict[str, list[str]],
    ) -> None:
        sent = self._process_calls(value, inflight, guards)
        for target in targets:
            if isinstance(target, ast.Subscript):
                name = base_name(target)
                if name in inflight:
                    self._emit(st, name, inflight[name], "item assignment into")
                continue
            for name in _target_names(target):
                # Rebinding a name severs it from whatever it pointed at.
                inflight.pop(name, None)
                guards.pop(name, None)
                if sent is not None:
                    # request = comm.isend(buf)/comm.alltoall_start(objs)
                    guards[name] = sent

    # ---- call processing -------------------------------------------------
    def _process_calls(
        self,
        node: ast.AST,
        inflight: dict[str, tuple[str, int]],
        guards: dict[str, list[str]],
    ) -> list[str] | None:
        """Handle starts, completions, and mutations in an expression.

        Returns the buffer names of a nonblocking send when ``node``
        itself is (or directly wraps) that call -- the assignment handler
        binds them to the request name.
        """
        top_sent: list[str] | None = None
        completed: set[ast.Call] = set()
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            method = call_method(call)
            if method in INFLIGHT_OPS and call.args:
                names = _buffer_names(call.args[0])
                if call in completed:
                    continue
                for nm in names:
                    inflight[nm] = (method, call.lineno)
                if call is node:
                    top_sent = names
                continue
            if method == "wait":
                receiver = call.func.value  # type: ignore[union-attr]
                if isinstance(receiver, ast.Call):
                    # comm.alltoall_start(objs).wait(): completes inline
                    completed.add(receiver)
                    continue
                self._release(base_name(receiver), inflight, guards)
                continue
            if method == "alltoall_finish":
                arg = call.args[0] if call.args else None
                if isinstance(arg, ast.Call):
                    completed.add(arg)
                elif isinstance(arg, ast.Name):
                    self._release(arg.id, inflight, guards)
                else:
                    # Unknown request object: assume it completes every
                    # outstanding exchange rather than false-positive.
                    inflight.clear()
                    guards.clear()
                continue
            if method in _MUTATORS:
                name = base_name(call.func.value)  # type: ignore[union-attr]
                if name in inflight:
                    self._emit(
                        call, name, inflight[name], f"in-place '{method}()' on"
                    )
        return top_sent

    def _release(
        self,
        request_name: str | None,
        inflight: dict[str, tuple[str, int]],
        guards: dict[str, list[str]],
    ) -> None:
        if request_name is None:
            return
        for name in guards.pop(request_name, []):
            inflight.pop(name, None)

    def _emit(
        self, node: ast.AST, name: str, origin: tuple[str, int], action: str
    ) -> None:
        op, line = origin
        self._out.append(
            self._ctx.finding(
                self,
                node,
                f"{action} '{name}', which was passed to {op}() at line "
                f"{line} and may still be in flight; the runtime owns the "
                f"buffer until the request is waited on -- complete the "
                f"request (wait()/alltoall_finish()) or send a copy "
                f"(Request contract)",
            )
        )

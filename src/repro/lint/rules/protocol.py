"""Whole-program SPMD protocol rules.

Three interprocedural rules over the :class:`repro.lint.callgraph.Program`
built from the communication IR:

``protocol-divergence``
    A rank-guarded (or rank-divergent) *call* reaches a collective
    somewhere down the call chain.  The file-local
    ``collective-symmetry`` rule already flags guarded collectives in
    the same function body; this rule covers the cases it cannot see --
    ``if rank == 0: checkpoint(comm)`` where ``checkpoint`` gathers.

``protocol-leak``
    A nonblocking start whose request is never completed on some path:
    discarded outright, rebound while still in flight, alive at function
    exit, or stored on an attribute that no function ever waits on.
    Requests that escape to the caller (returned) are the caller's
    obligation and tracked there via function summaries.

``protocol-inflight``
    A buffer put in flight *through a helper* (the helper starts a
    nonblocking op on its parameter and returns the request) is mutated
    in the caller before the request completes.  The file-local
    ``inflight-buffer`` rule covers the same-function case; this rule
    generalizes it across function boundaries.

All three run off a shared abstract interpretation of request states.
Each tracked request name holds a *possibility set* drawn from
``{NONE, INFLIGHT, DONE}``; branches fork the environment, ``x is not
None`` tests refine it, joins union it, and loop bodies iterate to a
fixpoint.  A leak is reported only when ``INFLIGHT`` is still possible
where an obligation ends -- so the canonical double-buffered pipeline
(``pending = None``; finish-if-not-None; restart; drain after the loop)
analyzes clean.

Soundness caveats (see DESIGN.md): requests passed to unresolved calls
are optimistically released; starts nested inside lambdas or
comprehensions carry no obligation; ``raise``/``break``/``continue`` end
a path without a leak check; attribute-stored requests are matched by
attribute name program-wide, not per object.
"""

from __future__ import annotations

from repro.lint.callgraph import Program, Summary, flatten
from repro.lint.core import Finding, ProgramRule, register_program
from repro.lint.ir import (
    AliasNode,
    BindNoneNode,
    CallNode,
    ExitNode,
    FuncIR,
    IfNode,
    LoopNode,
    ModuleIR,
    MutateNode,
    OpNode,
    RebindNode,
    ReturnNode,
    TryNode,
)

__all__ = [
    "ProtocolDivergenceRule",
    "ProtocolLeakRule",
    "ProtocolInflightRule",
]

NONE, INFLIGHT, DONE = "none", "inflight", "done"

_LOOP_CAP = 8  # fixpoint rounds before giving up on a loop body


# --------------------------------------------------------------------- #
# request-state interpretation (shared by leak + inflight rules)
# --------------------------------------------------------------------- #
class _Cell:
    """Abstract state of one request value; aliases share the cell."""

    __slots__ = ("statuses", "origin", "buffers")

    def __init__(self, statuses, origin, buffers=frozenset()):
        self.statuses = set(statuses)
        self.origin = origin  # originating OpNode/CallNode, for messages
        self.buffers = set(buffers)

    def copy(self) -> "_Cell":
        return _Cell(self.statuses, self.origin, self.buffers)


def _copy_env(env: dict) -> dict:
    """Copy an environment preserving intra-env aliasing."""
    mapping: dict[int, _Cell] = {}
    out = {}
    for name, cell in env.items():
        clone = mapping.get(id(cell))
        if clone is None:
            clone = mapping[id(cell)] = cell.copy()
        out[name] = clone
    return out


def _join_env(a: dict | None, b: dict | None) -> dict | None:
    if a is None:
        return b
    if b is None:
        return a
    out = {}
    for name in set(a) | set(b):
        ca, cb = a.get(name), b.get(name)
        if ca is None or cb is None:
            cell = (ca or cb).copy()
            # The name is untracked on the other branch: anything may
            # have happened to it there.
            cell.statuses.add(DONE)
            out[name] = cell
        else:
            origin = ca.origin if INFLIGHT in ca.statuses else cb.origin
            out[name] = _Cell(
                ca.statuses | cb.statuses, origin, ca.buffers | cb.buffers
            )
    return out


def _env_signature(env: dict | None):
    if env is None:
        return None
    return tuple(
        sorted(
            (name, tuple(sorted(c.statuses)), tuple(sorted(c.buffers)))
            for name, c in env.items()
        )
    )


class _Interp:
    """Interpret one function body, collecting leak/inflight findings."""

    def __init__(self, program: Program, mod: ModuleIR, fn: FuncIR) -> None:
        self.program = program
        self.mod = mod
        self.fn = fn
        self.findings: dict[tuple, tuple] = {}  # dedupe across loop rounds

    # -- findings ---------------------------------------------------------
    def _flag(self, rule: str, node, message: str) -> None:
        key = (rule, node.line, node.col, message)
        self.findings.setdefault(
            key, (rule, node.line, node.col, node.snippet, node.context, message)
        )

    def _leak(self, node, origin, why: str) -> None:
        op = origin.op if isinstance(origin, OpNode) else "call"
        label = (
            f"request from '{op}' (line {origin.line})"
            if origin is not node
            else f"request from '{op}'"
        )
        self._flag("protocol-leak", node, f"{label} {why}")

    # -- environment operations -------------------------------------------
    def _clear_buffer(self, env: dict, name: str) -> None:
        """A rebind of ``name`` detaches it from any in-flight buffer:
        mutations now act on a different object."""
        for cell in env.values():
            cell.buffers.discard(name)

    def _kill(self, env: dict, node, names) -> None:
        """Rebinding names: any still-in-flight request they held leaks."""
        for name in names:
            if "." in name:
                continue
            cell = env.pop(name, None)
            if cell is not None and INFLIGHT in cell.statuses:
                self._leak(
                    node, cell.origin,
                    f"is rebound at '{name}' while still in flight",
                )
            self._clear_buffer(env, name)

    def _release(self, env: dict, name: str) -> None:
        cell = env.get(name)
        if cell is not None:
            cell.statuses = {DONE}
            cell.buffers.clear()

    def _end_of_path(self, env: dict, node, *, escaped: str | None = None) -> None:
        """A return (or fall-off-the-end): every tracked request that may
        still be in flight -- other than the one escaping -- leaks."""
        seen: set[int] = set()
        for name, cell in env.items():
            if name == escaped or id(cell) in seen:
                continue
            seen.add(id(cell))
            if INFLIGHT in cell.statuses:
                self._leak(
                    node, cell.origin,
                    f"bound to '{name}' is not completed on this path",
                )

    # -- node dispatch ----------------------------------------------------
    def run(self) -> None:
        env = self._block(self.fn.body, {})
        if env is not None:
            terminal = self.fn.body[-1] if self.fn.body else None
            if terminal is not None:
                self._end_of_path(env, _last_node(self.fn.body))

    def _block(self, nodes: list, env: dict | None) -> dict | None:
        for node in nodes:
            if env is None:
                return None
            env = self._node(node, env)
        return env

    def _node(self, node, env: dict) -> dict | None:
        if isinstance(node, OpNode):
            self._op(node, env)
        elif isinstance(node, CallNode):
            self._call(node, env)
        elif isinstance(node, AliasNode):
            if node.target != node.source:
                cell = env.get(node.source)
                self._kill(env, node, (node.target,))
                if cell is not None:
                    env[node.target] = cell
                for other in env.values():
                    # Aliasing an in-flight buffer: mutating either name
                    # now mutates the frozen payload.
                    if node.source in other.buffers:
                        other.buffers.add(node.target)
        elif isinstance(node, BindNoneNode):
            self._kill(env, node, node.targets)
            for name in node.targets:
                if "." not in name:
                    env[name] = _Cell({NONE}, node)
        elif isinstance(node, RebindNode):
            self._kill(env, node, node.targets)
        elif isinstance(node, MutateNode):
            self._mutate(node, env)
        elif isinstance(node, ReturnNode):
            self._end_of_path(env, node, escaped=node.value_root)
            return None
        elif isinstance(node, ExitNode):
            return None
        elif isinstance(node, IfNode):
            return self._if(node, env)
        elif isinstance(node, LoopNode):
            return self._loop(node, env)
        elif isinstance(node, TryNode):
            return self._try(node, env)
        return env

    def _op(self, node: OpNode, env: dict) -> None:
        if node.kind == "start":
            if node.escape is None and not node.binds:
                self._flag(
                    "protocol-leak", node,
                    f"request from '{node.op}' is discarded -- it can "
                    f"never be completed",
                )
                return
            for bind in node.binds:
                if "." in bind:
                    attr = bind.rsplit(".", 1)[-1]
                    if attr not in self.program.attr_releases:
                        self._flag(
                            "protocol-leak", node,
                            f"request from '{node.op}' is stored on "
                            f"attribute '{bind}' but no function ever "
                            f"completes '{attr}'",
                        )
                else:
                    self._kill(env, node, (bind,))
                    env[bind] = _Cell({INFLIGHT}, node)
        elif node.kind == "finish":
            request = node.request
            if request and "." not in request:
                self._release(env, request)
            for bind in node.binds:
                if "." not in bind:
                    self._kill(env, node, (bind,))

    def _call(self, node: CallNode, env: dict) -> None:
        resolved = self.program.resolve(self.mod, self.fn, node.callee)
        summary = Summary()
        offset = 0
        if resolved is not None:
            cmod, callee, offset = resolved
            summary = self.program.summary_of(cmod, callee)
        arg_buffers: set[str] = set()
        for i, roots in enumerate(node.argroots):
            for root in roots:
                cell = env.get(root)
                if cell is not None and INFLIGHT in cell.statuses:
                    if resolved is None or (i + offset) in summary.finishes_params:
                        # Unresolved callees are optimistically assumed
                        # to complete any request handed to them.
                        self._release(env, root)
                if resolved is not None and (i + offset) in summary.starts_on_params:
                    arg_buffers.add(root)
        if node.binds:
            self._kill(env, node, node.binds)
            if summary.returns_request:
                cell = _Cell({INFLIGHT}, node, frozenset(arg_buffers))
                for bind in node.binds:
                    if "." not in bind:
                        env[bind] = cell
        elif node.escape is None and summary.returns_request:
            self._flag(
                "protocol-leak", node,
                f"call to '{'.'.join(node.callee)}' returns an in-flight "
                f"request that is discarded -- it can never be completed",
            )

    def _mutate(self, node: MutateNode, env: dict) -> None:
        seen: set[int] = set()
        for name, cell in env.items():
            if id(cell) in seen:
                continue
            seen.add(id(cell))
            if INFLIGHT in cell.statuses and node.name in cell.buffers:
                origin = cell.origin
                self._flag(
                    "protocol-inflight", node,
                    f"{node.how} '{node.name}' while it is in flight: the "
                    f"request started at line {origin.line} has not been "
                    f"completed",
                )

    def _if(self, node: IfNode, env: dict) -> dict | None:
        then_env = _copy_env(env)
        else_env = _copy_env(env)
        then_dead = else_dead = False
        if node.refine is not None:
            name, sense = node.refine
            non_none, is_none = (then_env, else_env) if sense else (
                else_env, then_env
            )
            cell = non_none.get(name)
            if cell is not None:
                cell.statuses.discard(NONE)
                if not cell.statuses:
                    if sense:
                        then_dead = True
                    else:
                        else_dead = True
            cell = is_none.get(name)
            if cell is not None:
                if NONE in cell.statuses:
                    cell.statuses = {NONE}
                    cell.buffers.clear()
                else:
                    if sense:
                        else_dead = True
                    else:
                        then_dead = True
        then_out = None if then_dead else self._block(node.then, then_env)
        else_out = None if else_dead else self._block(node.orelse, else_env)
        return _join_env(then_out, else_out)

    def _loop(self, node: LoopNode, env: dict) -> dict | None:
        state = env
        for _ in range(_LOOP_CAP):
            out = self._block(node.body, _copy_env(state))
            joined = _join_env(state, out)
            if joined is None:
                break
            if _env_signature(joined) == _env_signature(state):
                state = joined
                break
            state = joined
        if state is None:
            return None
        return self._block(node.orelse, state)

    def _try(self, node: TryNode, env: dict) -> dict | None:
        body_out = self._block(node.body, _copy_env(env))
        outs = [body_out]
        for handler in node.handlers:
            outs.append(self._block(handler, _copy_env(env)))
        if body_out is not None:
            outs.append(self._block(node.orelse, _copy_env(body_out)))
            outs.pop(0)
        joined = None
        for out in outs:
            joined = _join_env(joined, out)
        if node.final:
            if joined is None:
                joined = _copy_env(env)
            return self._block(node.final, joined)
        return joined


def _last_node(nodes: list):
    return nodes[-1]


def _interp_findings(program: Program) -> list[tuple]:
    """Run the request-state interpretation once per program; results
    are shared between the leak and inflight rules via scratch space."""
    cached = program.scratch.get("protocol-interp")
    if cached is not None:
        return cached
    results: list[tuple] = []  # (rule, path, line, col, snippet, ctx, msg)
    for mod, fn in program.iter_functions():
        interp = _Interp(program, mod, fn)
        interp.run()
        for rule, line, col, snippet, context, message in interp.findings.values():
            results.append((rule, mod.path, line, col, snippet, context, message))
    results.sort(key=lambda r: (r[1], r[2], r[3], r[0]))
    program.scratch["protocol-interp"] = results
    return results


def _finding(rule, severity, item) -> Finding:
    _, path, line, col, snippet, context, message = item
    return Finding(
        rule=rule, severity=severity, path=path, line=line, col=col,
        message=message, snippet=snippet, context=context,
    )


# --------------------------------------------------------------------- #
# rules
# --------------------------------------------------------------------- #
@register_program
class ProtocolDivergenceRule(ProgramRule):
    """Rank-guarded call chains must not reach collectives."""

    name = "protocol-divergence"
    severity = "error"
    description = (
        "a call executed only by some ranks reaches a collective "
        "operation down its call chain; the excluded ranks never enter "
        "it and every rank inside blocks forever"
    )

    def check(self, program: Program):
        for mod, fn in program.iter_functions():
            for node in flatten(fn.body):
                if not isinstance(node, CallNode) or node.guard == "all":
                    continue
                resolved = program.resolve(mod, fn, node.callee)
                if resolved is None:
                    continue
                cmod, callee, _ = resolved
                summary = program.summary_of(cmod, callee)
                if not summary.has_collective:
                    continue
                op, site_path, site_line = summary.collective_site or (
                    "?", cmod.path, callee.line,
                )
                if node.guard == "guarded":
                    how = f"is rank-guarded (guard at line {node.guard_line})"
                else:
                    how = (
                        f"runs after a rank-dependent early exit "
                        f"(line {node.guard_line})"
                    )
                yield Finding(
                    rule=self.name, severity=self.severity, path=mod.path,
                    line=node.line, col=node.col,
                    message=(
                        f"call to '{'.'.join(node.callee)}' {how} but "
                        f"executes collective '{op}' "
                        f"({site_path}:{site_line}); ranks outside the "
                        f"guard never reach it -- possible deadlock"
                    ),
                    snippet=node.snippet, context=node.context,
                )


@register_program
class ProtocolLeakRule(ProgramRule):
    """Every nonblocking start must be completed on every path."""

    name = "protocol-leak"
    severity = "error"
    description = (
        "a nonblocking request is discarded, rebound, or still in "
        "flight at function exit on some path, so the transfer is "
        "never completed"
    )

    def check(self, program: Program):
        for item in _interp_findings(program):
            if item[0] == self.name:
                yield _finding(self.name, self.severity, item)


@register_program
class ProtocolInflightRule(ProgramRule):
    """Buffers handed to a helper-started request stay frozen until
    the request completes."""

    name = "protocol-inflight"
    severity = "error"
    description = (
        "a buffer put in flight through a helper's nonblocking start "
        "is mutated before the returned request is completed"
    )

    def check(self, program: Program):
        for item in _interp_findings(program):
            if item[0] == self.name:
                yield _finding(self.name, self.severity, item)

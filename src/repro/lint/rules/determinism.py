"""determinism: ground truth must be reproducible bit-for-bit.

The paper's validation story compares generated graphs against exact
formulas; that comparison is only trustworthy when generation and
ground-truth evaluation are deterministic (Kepner et al., arXiv:1803.01281
make the same argument for at-scale validation).  Scoped to
``groundtruth/`` and ``kronecker/``, this rule flags:

* **set-order dependence**: iterating a ``set`` (literal, ``set()`` call,
  set comprehension, or a name bound to one), or converting one straight
  to a sequence via ``list(set(...))``/``tuple(set(...))`` -- iteration
  order varies across runs and platforms; ``sorted(...)`` is exempt and
  is the fix;
* **process-global randomness**: any ``np.random.<fn>()`` legacy call
  (seeded or not, the global stream is shared mutable state) and
  ``np.random.default_rng()`` with no seed;
* **time-derived seeds**: ``time.time()``-ish values flowing into a
  ``seed=`` keyword, a ``*.seed(...)``/``default_rng(...)`` call, or a
  variable whose name contains "seed".
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, register
from repro.lint.rules.common import attr_chain

__all__ = ["DeterminismRule"]

_TIME_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "datetime", "now"),
        ("datetime", "datetime", "utcnow"),
    }
)

_SEQ_CONVERTERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _contains_time_call(node: ast.AST) -> ast.Call | None:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            chain = attr_chain(sub.func)
            if chain and (chain in _TIME_CALLS or chain[-2:] in _TIME_CALLS):
                return sub
    return None


@register
class DeterminismRule(Rule):
    name = "determinism"
    severity = "warning"
    description = (
        "ground-truth code must not depend on set iteration order, global "
        "np.random state, or time-derived seeds"
    )
    scope_dirs = ("groundtruth", "kronecker", "skg")

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        self._ctx = ctx
        self._out: list[Finding] = []
        set_names = self._collect_set_names(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iteration(node.iter, set_names)
            elif isinstance(node, ast.comprehension):
                self._check_iteration(node.iter, set_names)
            elif isinstance(node, ast.Call):
                self._check_call(node, set_names)
            elif isinstance(node, ast.Assign):
                self._check_seed_assign(node)
        return self._out

    # ---- set-order dependence --------------------------------------------
    @staticmethod
    def _collect_set_names(tree: ast.Module) -> dict[str, int]:
        names: dict[str, int] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value):
                        names[target.id] = node.lineno
                    else:
                        names.pop(target.id, None)
        return names

    def _check_iteration(
        self, iter_expr: ast.expr, set_names: dict[str, int]
    ) -> None:
        if _is_set_expr(iter_expr):
            self._emit_set(iter_expr, "iterating a set directly")
        elif (
            isinstance(iter_expr, ast.Name) and iter_expr.id in set_names
        ):
            self._emit_set(
                iter_expr,
                f"iterating '{iter_expr.id}' (bound to a set at line "
                f"{set_names[iter_expr.id]})",
            )

    def _check_call(self, node: ast.Call, set_names: dict[str, int]) -> None:
        # list(set(...)) / tuple(set(...)): order leaks into a sequence.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _SEQ_CONVERTERS
            and node.args
        ):
            arg = node.args[0]
            if _is_set_expr(arg) or (
                isinstance(arg, ast.Name) and arg.id in set_names
            ):
                self._emit_set(
                    node,
                    f"'{node.func.id}()' over a set freezes an "
                    f"unspecified order",
                )
        self._check_np_random(node)
        self._check_time_seed_call(node)

    def _emit_set(self, node: ast.AST, what: str) -> None:
        self._out.append(
            self._ctx.finding(
                self,
                node,
                f"{what}: set iteration order is not deterministic across "
                f"runs/platforms -- use sorted(...) before it can feed "
                f"edge output",
            )
        )

    # ---- global / unseeded randomness ------------------------------------
    def _check_np_random(self, node: ast.Call) -> None:
        chain = attr_chain(node.func)
        if not chain or len(chain) < 3:
            return
        if chain[0] not in ("np", "numpy") or chain[1] != "random":
            return
        fn = chain[2]
        if fn == "default_rng":
            if not node.args and not node.keywords:
                self._out.append(
                    self._ctx.finding(
                        self,
                        node,
                        "np.random.default_rng() without a seed draws "
                        "OS entropy; pass an explicit seed",
                    )
                )
        else:
            self._out.append(
                self._ctx.finding(
                    self,
                    node,
                    f"np.random.{fn} uses the process-global legacy "
                    f"stream; use a seeded np.random.default_rng(seed) "
                    f"Generator instead",
                )
            )

    # ---- time-derived seeds ----------------------------------------------
    def _check_time_seed_call(self, node: ast.Call) -> None:
        seedy = False
        if isinstance(node.func, ast.Attribute) and node.func.attr == "seed":
            seedy = True
        chain = attr_chain(node.func)
        if chain and chain[-1] in ("default_rng", "RandomState", "Generator"):
            seedy = True
        targets: list[ast.AST] = []
        if seedy:
            targets.extend(node.args)
        targets.extend(kw.value for kw in node.keywords if kw.arg == "seed")
        for expr in targets:
            hit = _contains_time_call(expr)
            if hit is not None:
                self._out.append(
                    self._ctx.finding(
                        self,
                        hit,
                        "seed derived from the clock is different on every "
                        "run; use a fixed seed (or thread one through the "
                        "API)",
                    )
                )

    def _check_seed_assign(self, node: ast.Assign) -> None:
        if not any(
            isinstance(t, ast.Name) and "seed" in t.id.lower()
            for t in node.targets
        ):
            return
        hit = _contains_time_call(node.value)
        if hit is not None:
            self._out.append(
                self._ctx.finding(
                    self,
                    hit,
                    "seed variable derived from the clock makes every run "
                    "unrepeatable; use a fixed seed",
                )
            )

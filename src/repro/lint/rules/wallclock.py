"""wall-clock: distributed/serving code takes time from ``repro.telemetry.clock``.

The telemetry layer injects clocks (:mod:`repro.telemetry.clock`): spans
and metrics are timestamped by a callable the session configures, so
tests swap in a :class:`~repro.telemetry.clock.FakeClock` and get
deterministic traces, and the measurement clock is one config choice
instead of a grep.  A direct ``time.time()`` / ``time.perf_counter()``
inside ``distributed/`` or ``service/`` bypasses the injection point:
the reading never appears in a trace, cannot be faked in tests, and
(for ``time.time``) jumps under NTP adjustments mid-run.

Scoped to ``distributed/`` and ``service/`` (the query server's request
latencies feed the same histograms and traces), this rule flags

* calls to ``time.time`` / ``time.perf_counter`` / ``time.monotonic`` /
  ``time.process_time`` (and their ``_ns`` variants) through the module
  attribute, and
* ``from time import ...`` of those names (the call sites then look like
  innocent local calls, so the import is the reliable anchor).

``time.sleep`` is deliberately allowed -- it spends time rather than
reads it (backoff, injected fault delays).  The named re-exports in
:mod:`repro.telemetry.clock` (``monotonic`` for deadlines, ``perf_clock``
for measurement) are the sanctioned replacements; the telemetry package
itself is outside the rule's scope as the one place allowed to touch the
real clock.

Severity is ``warning``: a raw clock read is a maintainability smell,
not a correctness bug like an asymmetric collective.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, register

__all__ = ["WallClockRule"]

#: ``time`` module attributes that *read* a clock (sleep is allowed).
_CLOCK_READS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


@register
class WallClockRule(Rule):
    name = "wall-clock"
    severity = "warning"
    description = (
        "distributed code must take time from repro.telemetry.clock "
        "(injected, fakeable), not time.time()/perf_counter() directly"
    )
    scope_dirs = ("distributed", "service")

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                    and func.attr in _CLOCK_READS
                ):
                    out.append(
                        ctx.finding(
                            self,
                            node,
                            f"direct time.{func.attr}() in distributed/"
                            f"serving code: use repro.telemetry.clock "
                            f"(monotonic for deadlines, perf_clock for "
                            f"measurement) so the clock stays injectable "
                            f"and fakeable in tests",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module != "time" or node.level:
                    continue
                for alias in node.names:
                    if alias.name in _CLOCK_READS:
                        out.append(
                            ctx.finding(
                                self,
                                node,
                                f"importing {alias.name!r} from time in "
                                f"distributed/serving code: use "
                                f"repro.telemetry.clock instead so the "
                                f"clock stays injectable and fakeable "
                                f"in tests",
                            )
                        )
        return out

"""Communication IR: per-module comm-op extraction for whole-program analysis.

The file-local rules of :mod:`repro.lint.rules` see one function body at
a time, so the invariants that span functions -- a collective three
frames down a call chain, a request returned through a helper, a buffer
started in one function and mutated in its caller -- are invisible to
them.  This module extracts, per file, a small *communication IR*: for
every function, an abstract statement tree recording only the events the
protocol checker cares about:

* comm-op call sites (collectives, nonblocking starts, waits/finishes)
  with the buffer expressions they capture and where their result goes
  (bound to a local, returned, stored on ``self``, discarded);
* calls to other functions (with the root names of positional
  arguments), so :mod:`repro.lint.callgraph` can stitch summaries
  together;
* name binding events that matter for request/buffer tracking (aliases,
  rebinding, ``x = None``) and in-place mutations;
* control flow (if/loop/try, returns and raises) with each node's
  *rank-guard context* -- ``"all"`` (every rank executes this),
  ``"guarded"`` (under a rank-dependent test), or ``"divergent"``
  (after a rank-guarded asymmetric early exit).

Extraction is a pure function of file content, so the IR is serialized
into the content-addressed cache (:mod:`repro.lint.cache`) and only
re-extracted for changed files.

Known abstractions (see DESIGN.md "Whole-program protocol analysis" for
the soundness discussion): starts nested in lambdas/comprehensions are
recorded as escaping rather than tracked, keyword arguments do not
propagate buffers, and attribute-stored requests are matched by
attribute name program-wide.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.lint.ops import (
    COLLECTIVE_OPS,
    FINISH_OPS,
    MUTATOR_METHODS,
    REQUEST_OPS,
    attr_chain,
    base_name,
    call_method,
    contains_rank_ref,
)

__all__ = [
    "IR_VERSION",
    "OpNode",
    "CallNode",
    "AliasNode",
    "BindNoneNode",
    "RebindNode",
    "MutateNode",
    "ReturnNode",
    "ExitNode",
    "IfNode",
    "LoopNode",
    "TryNode",
    "FuncIR",
    "ModuleIR",
    "extract_module",
    "module_name_for",
    "node_to_json",
    "node_from_json",
]

#: Bump whenever node shapes or extraction semantics change: the version
#: is folded into the cache key, so stale cached IR can never be loaded.
IR_VERSION = 1

#: Rank-guard contexts, in increasing order of divergence.
GUARDS = ("all", "guarded", "divergent")


# --------------------------------------------------------------------- #
# nodes
# --------------------------------------------------------------------- #
@dataclass
class _Node:
    """Common position/context payload of every IR node."""

    line: int = 0
    col: int = 0
    snippet: str = ""
    context: str = ""
    guard: str = "all"
    guard_line: int = 0


@dataclass
class OpNode(_Node):
    """A comm-op call site.

    ``kind`` is ``"collective"`` / ``"start"`` / ``"finish"``; ``op`` the
    method name.  For starts, ``buffers`` holds the root names of the
    buffer argument, ``binds`` the names the returned request is bound
    to (possibly dotted ``self.X``), and ``escape`` how the request
    leaves if unbound (``"return"``, ``"nested"``, or ``None`` for a
    plain discarded expression).  For finishes, ``request`` names the
    completed request (dotted for attributes).
    """

    t = "op"
    kind: str = ""
    op: str = ""
    buffers: tuple = ()
    binds: tuple = ()
    escape: str | None = None
    request: str | None = None


@dataclass
class CallNode(_Node):
    """A call to a (potentially program-local) plain function or method."""

    t = "call"
    callee: tuple = ()
    argroots: tuple = ()  # per positional argument: tuple of root names
    binds: tuple = ()
    escape: str | None = None


@dataclass
class AliasNode(_Node):
    t = "alias"
    target: str = ""
    source: str = ""


@dataclass
class BindNoneNode(_Node):
    t = "none"
    targets: tuple = ()


@dataclass
class RebindNode(_Node):
    t = "rebind"
    targets: tuple = ()


@dataclass
class MutateNode(_Node):
    t = "mutate"
    name: str = ""
    how: str = ""


@dataclass
class ReturnNode(_Node):
    t = "return"
    value_root: str | None = None


@dataclass
class ExitNode(_Node):
    """raise/break/continue: the path ends without a leak obligation."""

    t = "exit"


@dataclass
class IfNode(_Node):
    t = "if"
    rank_test: bool = False
    #: (name, sense) when the test refines a single name against None /
    #: truthiness: sense True means the *then* branch sees a non-None
    #: value.  ``None`` for any other test.
    refine: tuple | None = None
    then: list = field(default_factory=list)
    orelse: list = field(default_factory=list)


@dataclass
class LoopNode(_Node):
    t = "loop"
    body: list = field(default_factory=list)
    orelse: list = field(default_factory=list)


@dataclass
class TryNode(_Node):
    t = "try"
    body: list = field(default_factory=list)
    handlers: list = field(default_factory=list)  # list of node lists
    orelse: list = field(default_factory=list)
    final: list = field(default_factory=list)


_NODE_TYPES = {
    cls.t: cls
    for cls in (
        OpNode, CallNode, AliasNode, BindNoneNode, RebindNode,
        MutateNode, ReturnNode, ExitNode, IfNode, LoopNode, TryNode,
    )
}

_CHILD_LISTS = ("then", "orelse", "body", "final")


def node_to_json(node: _Node) -> dict:
    d: dict = {"t": type(node).t}
    for f in fields(node):
        value = getattr(node, f.name)
        if f.name in _CHILD_LISTS:
            value = [node_to_json(c) for c in value]
        elif f.name == "handlers":
            value = [[node_to_json(c) for c in handler] for handler in value]
        elif isinstance(value, tuple):
            value = list(value)
        d[f.name] = value
    return d


def node_from_json(d: dict) -> _Node:
    cls = _NODE_TYPES[d["t"]]
    kwargs = {}
    for f in fields(cls):
        if f.name not in d:
            continue
        value = d[f.name]
        if f.name in _CHILD_LISTS:
            value = [node_from_json(c) for c in value]
        elif f.name == "handlers":
            value = [[node_from_json(c) for c in h] for h in value]
        elif isinstance(value, list):
            value = tuple(
                tuple(v) if isinstance(v, list) else v for v in value
            )
        kwargs[f.name] = value
    return cls(**kwargs)


# --------------------------------------------------------------------- #
# functions and modules
# --------------------------------------------------------------------- #
@dataclass
class FuncIR:
    """One function's extracted communication behaviour."""

    qualname: str
    params: tuple = ()
    body: list = field(default_factory=list)
    cls: str | None = None  # enclosing class, for self.method resolution
    local_defs: dict = field(default_factory=dict)  # bare name -> qualname
    line: int = 0

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname,
            "params": list(self.params),
            "body": [node_to_json(n) for n in self.body],
            "cls": self.cls,
            "local_defs": dict(self.local_defs),
            "line": self.line,
        }

    @classmethod
    def from_json(cls, d: dict) -> "FuncIR":
        return cls(
            qualname=d["qualname"],
            params=tuple(d["params"]),
            body=[node_from_json(n) for n in d["body"]],
            cls=d.get("cls"),
            local_defs=dict(d.get("local_defs", {})),
            line=d.get("line", 0),
        )


@dataclass
class ModuleIR:
    """Everything the program analysis needs to know about one file."""

    path: str
    module: str
    functions: dict = field(default_factory=dict)  # qualname -> FuncIR
    from_imports: dict = field(default_factory=dict)  # local -> (module, name)
    alias_imports: dict = field(default_factory=dict)  # alias -> module
    plain_imports: tuple = ()  # dotted names bound by plain `import a.b.c`
    version: int = IR_VERSION

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "functions": {q: f.to_json() for q, f in self.functions.items()},
            "from_imports": {
                k: list(v) for k, v in self.from_imports.items()
            },
            "alias_imports": dict(self.alias_imports),
            "plain_imports": list(self.plain_imports),
            "version": self.version,
        }

    @classmethod
    def from_json(cls, d: dict) -> "ModuleIR":
        return cls(
            path=d["path"],
            module=d["module"],
            functions={
                q: FuncIR.from_json(f) for q, f in d["functions"].items()
            },
            from_imports={
                k: tuple(v) for k, v in d.get("from_imports", {}).items()
            },
            alias_imports=dict(d.get("alias_imports", {})),
            plain_imports=tuple(d.get("plain_imports", ())),
            version=d.get("version", 0),
        )


def module_name_for(path: str | Path) -> str:
    """Dotted module name a file is importable as.

    Files under a ``src`` directory get their full package path
    (``src/repro/distributed/shuffle.py`` -> ``repro.distributed.shuffle``);
    anything else resolves to its stem (benchmarks, examples, and test
    fixtures are imported as top-level modules).
    """
    parts = list(Path(path).parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
        parts[-1] = Path(parts[-1]).stem
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)
    return Path(path).stem


# --------------------------------------------------------------------- #
# extraction
# --------------------------------------------------------------------- #
def _roots(expr: ast.expr) -> tuple:
    """Root names of the object(s) an expression passes along.

    Lists/tuples contribute every element's root -- ``[a, b]`` names the
    buffers of an alltoall payload.
    """
    if isinstance(expr, (ast.List, ast.Tuple)):
        names: list[str] = []
        for elt in expr.elts:
            names.extend(_roots(elt))
        return tuple(names)
    name = base_name(expr)
    return (name,) if name is not None else ()


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _dotted(expr: ast.expr) -> str | None:
    """``self._inner`` -> ``"self._inner"``; None for non-dotted forms."""
    chain = attr_chain(expr)
    return ".".join(chain) if chain else None


def _refinement(test: ast.expr) -> tuple | None:
    """(name, sense) for ``x is (not) None`` / bare-``x`` truthiness tests."""
    if isinstance(test, ast.Name):
        return (test.id, True)
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
    ):
        return (test.operand.id, False)
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.IsNot):
            return (test.left.id, True)
        if isinstance(test.ops[0], ast.Is):
            return (test.left.id, False)
    return None


_EXITS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


def _block_exits(stmts: list[ast.stmt]) -> bool:
    return any(isinstance(s, _EXITS) for s in stmts)


class _Extractor:
    """Walks one module's AST into a :class:`ModuleIR`."""

    def __init__(self, tree: ast.Module, lines: list[str], path: str) -> None:
        self.tree = tree
        self.lines = lines
        self.mod = ModuleIR(path=path, module=module_name_for(path))

    # -- source helpers ---------------------------------------------------
    def _snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def _context(self, line: int) -> str:
        def nearest(start: int, step: int) -> str:
            i = start
            while 1 <= i <= len(self.lines):
                text = self.lines[i - 1].strip()
                if text:
                    return text
                i += step
            return ""

        return nearest(line - 1, -1) + "␞" + nearest(line + 1, 1)

    def _place(self, node: _Node, at: ast.AST, guard) -> _Node:
        node.line = getattr(at, "lineno", 0)
        node.col = getattr(at, "col_offset", 0)
        node.snippet = self._snippet(node.line)
        node.context = self._context(node.line)
        if guard is not None:
            node.guard, node.guard_line = guard
        return node

    # -- module walk ------------------------------------------------------
    def run(self) -> ModuleIR:
        self._imports(self.tree)
        module_fn = FuncIR(qualname="<module>")
        self._extract_defs(self.tree.body, prefix="", cls=None, into=module_fn)
        module_fn.body = self._block(self.tree.body, None)
        self.mod.functions["<module>"] = module_fn
        return self.mod

    def _imports(self, tree: ast.Module) -> None:
        plain: list[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.mod.alias_imports[alias.asname] = alias.name
                    else:
                        plain.append(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.mod.from_imports[local] = (node.module, alias.name)
        self.mod.plain_imports = tuple(plain)

    def _extract_defs(
        self, stmts: list[ast.stmt], prefix: str, cls: str | None, into: FuncIR
    ) -> None:
        """Register every function/method defined in a statement list."""
        for st in stmts:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + st.name
                into.local_defs[st.name] = qual
                self._function(st, qual, cls)
            elif isinstance(st, ast.ClassDef):
                for sub in st.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{st.name}.{sub.name}"
                        self._function(sub, qual, st.name)
            elif isinstance(st, (ast.If, ast.Try, ast.While, ast.For, ast.With)):
                # defs under module-level conditionals (TYPE_CHECKING etc.)
                for block in ("body", "orelse", "finalbody"):
                    self._extract_defs(
                        getattr(st, block, []) or [], prefix, cls, into
                    )
                for handler in getattr(st, "handlers", []) or []:
                    self._extract_defs(handler.body, prefix, cls, into)

    def _function(
        self, st: ast.FunctionDef, qualname: str, cls: str | None
    ) -> None:
        fn = FuncIR(
            qualname=qualname,
            params=tuple(
                a.arg
                for a in (
                    *st.args.posonlyargs, *st.args.args,
                )
            ),
            cls=cls,
            line=st.lineno,
        )
        self._extract_defs(st.body, prefix=f"{qualname}.<locals>.", cls=cls, into=fn)
        fn.body = self._block(st.body, None)
        self.mod.functions[qualname] = fn

    # -- statement walk ---------------------------------------------------
    def _block(self, stmts: list[ast.stmt], guard) -> list:
        out: list = []
        for st in stmts:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # registered by _extract_defs; fresh scope
            elif isinstance(st, ast.Assign):
                self._assign(out, st, st.targets, st.value, guard)
            elif isinstance(st, ast.AnnAssign):
                if st.value is not None:
                    self._assign(out, st, [st.target], st.value, guard)
            elif isinstance(st, ast.AugAssign):
                self._expr(out, st.value, guard)
                name = base_name(st.target)
                if name:
                    out.append(
                        self._place(
                            MutateNode(name=name, how="augmented assignment to"),
                            st, guard,
                        )
                    )
            elif isinstance(st, ast.Delete):
                for tgt in st.targets:
                    if isinstance(tgt, ast.Subscript):
                        name = base_name(tgt)
                        if name:
                            out.append(
                                self._place(
                                    MutateNode(name=name, how="deletion from"),
                                    st, guard,
                                )
                            )
            elif isinstance(st, ast.Return):
                if st.value is not None and self._is_tracked_call(st.value):
                    self._emit_call(out, st.value, guard, binds=(), escape="return")
                    out.append(self._place(ReturnNode(), st, guard))
                else:
                    root = None
                    if st.value is not None:
                        self._expr(out, st.value, guard)
                        if isinstance(st.value, ast.Name):
                            root = st.value.id
                    out.append(
                        self._place(ReturnNode(value_root=root), st, guard)
                    )
            elif isinstance(st, (ast.Raise, ast.Break, ast.Continue)):
                if isinstance(st, ast.Raise) and st.exc is not None:
                    self._expr(out, st.exc, guard)
                out.append(self._place(ExitNode(), st, guard))
            elif isinstance(st, ast.If):
                guard = self._if(out, st, guard)
            elif isinstance(st, ast.While):
                self._expr(out, st.test, guard)
                rank_test = contains_rank_ref(st.test)
                inner = ("guarded", st.lineno) if rank_test else guard
                node = LoopNode(
                    body=self._block(st.body, inner),
                    orelse=self._block(st.orelse, inner),
                )
                out.append(self._place(node, st, guard))
            elif isinstance(st, (ast.For, ast.AsyncFor)):
                self._expr(out, st.iter, guard)
                body: list = []
                targets = tuple(_target_names(st.target))
                if targets:
                    rebind = self._place(RebindNode(targets=targets), st, guard)
                    body.append(rebind)
                body.extend(self._block(st.body, guard))
                node = LoopNode(body=body, orelse=self._block(st.orelse, guard))
                out.append(self._place(node, st, guard))
            elif isinstance(st, (ast.With, ast.AsyncWith)):
                for item in st.items:
                    self._expr(out, item.context_expr, guard)
                    if item.optional_vars is not None:
                        names = tuple(_target_names(item.optional_vars))
                        if names:
                            out.append(
                                self._place(
                                    RebindNode(targets=names), st, guard
                                )
                            )
                out.extend(self._block(st.body, guard))
            elif isinstance(st, ast.Try):
                node = TryNode(
                    body=self._block(st.body, guard),
                    handlers=[
                        self._block(h.body, guard) for h in st.handlers
                    ],
                    orelse=self._block(st.orelse, guard),
                    final=self._block(st.finalbody, guard),
                )
                out.append(self._place(node, st, guard))
            elif isinstance(st, ast.Expr):
                if self._is_tracked_call(st.value):
                    self._emit_call(out, st.value, guard, binds=(), escape=None)
                else:
                    self._expr(out, st.value, guard)
            else:
                self._expr(out, st, guard)
        return out

    def _if(self, out: list, st: ast.If, guard):
        """Emit an IfNode; returns the (possibly escalated) guard for the
        statements *after* it -- the rank-guarded asymmetric early exit."""
        self._expr(out, st.test, guard)
        rank_test = contains_rank_ref(st.test)
        inner = ("guarded", st.lineno) if rank_test else guard
        node = IfNode(
            rank_test=rank_test,
            refine=_refinement(st.test),
            then=self._block(st.body, inner),
            orelse=self._block(st.orelse, inner),
        )
        out.append(self._place(node, st, guard))
        if rank_test and _block_exits(st.body) != _block_exits(st.orelse):
            return guard or ("divergent", st.lineno)
        return guard

    # -- assignment -------------------------------------------------------
    def _assign(
        self,
        out: list,
        st: ast.stmt,
        targets: list[ast.expr],
        value: ast.expr,
        guard,
    ) -> None:
        plain: list[str] = []
        attrs: list[str] = []
        for target in targets:
            if isinstance(target, ast.Subscript):
                name = base_name(target)
                if name:
                    out.append(
                        self._place(
                            MutateNode(name=name, how="item assignment into"),
                            st, guard,
                        )
                    )
            elif isinstance(target, ast.Attribute):
                dotted = _dotted(target)
                if dotted:
                    attrs.append(dotted)
            else:
                plain.extend(_target_names(target))
        binds = tuple(plain) + tuple(attrs)
        if self._is_tracked_call(value):
            self._emit_call(out, value, guard, binds=binds, escape=None)
            return
        self._expr(out, value, guard)
        if not binds:
            return
        if isinstance(value, ast.Name):
            for t in plain:
                out.append(
                    self._place(
                        AliasNode(target=t, source=value.id), st, guard
                    )
                )
        elif isinstance(value, ast.Constant) and value.value is None:
            out.append(self._place(BindNoneNode(targets=binds), st, guard))
        else:
            out.append(self._place(RebindNode(targets=binds), st, guard))

    # -- expression scan --------------------------------------------------
    def _is_tracked_call(self, expr: ast.expr) -> bool:
        """Is ``expr`` itself a call we model (comm op or plain call)?"""
        if not isinstance(expr, ast.Call):
            return False
        method = call_method(expr)
        if method in COLLECTIVE_OPS | REQUEST_OPS | FINISH_OPS:
            return True
        return self._callee_chain(expr) is not None

    def _callee_chain(self, call: ast.Call) -> tuple | None:
        """Dotted chain of a plain (non-comm-op) callee, if trackable."""
        chain = attr_chain(call.func)
        if chain is None:
            return None
        if chain[-1] in COLLECTIVE_OPS | REQUEST_OPS | FINISH_OPS | MUTATOR_METHODS:
            return None
        return chain

    def _emit_call(
        self,
        out: list,
        call: ast.Call,
        guard,
        binds: tuple,
        escape: str | None,
    ) -> None:
        """Emit the node for a *directly consumed* call expression."""
        for arg in call.args:
            self._expr(out, arg, guard)
        for kw in call.keywords:
            self._expr(out, kw.value, guard)
        method = call_method(call)
        if method in COLLECTIVE_OPS:
            out.append(
                self._place(
                    OpNode(kind="collective", op=method), call, guard
                )
            )
            return
        if method in REQUEST_OPS:
            buffers = (
                _roots(call.args[0])
                if method != "irecv" and call.args
                else ()
            )
            out.append(
                self._place(
                    OpNode(
                        kind="start", op=method, buffers=buffers,
                        binds=binds, escape=escape,
                    ),
                    call, guard,
                )
            )
            return
        if method in FINISH_OPS:
            receiver = call.func.value  # type: ignore[union-attr]
            if method == "wait":
                if isinstance(receiver, ast.Call):
                    # comm.alltoall_start(x).wait(): starts and completes
                    # inline -- nothing is ever in flight afterwards.
                    return
                request = _dotted(receiver)
            else:  # alltoall_finish(request)
                arg = call.args[0] if call.args else None
                if isinstance(arg, ast.Call):
                    return
                request = _dotted(arg) if arg is not None else None
            out.append(
                self._place(
                    OpNode(kind="finish", op=method, request=request, binds=binds),
                    call, guard,
                )
            )
            return
        chain = self._callee_chain(call)
        if chain is None:
            return
        argroots = tuple(_roots(a) for a in call.args)
        out.append(
            self._place(
                CallNode(
                    callee=chain, argroots=argroots, binds=binds,
                    escape=escape,
                ),
                call, guard,
            )
        )

    def _expr(self, out: list, node: ast.AST, guard, escape: str = "nested") -> None:
        """Scan an arbitrary expression for nested comm events.

        Everything found here is *not* directly consumed by a statement
        we model, so starts are recorded with ``escape="nested"`` (no
        leak obligation -- soundness caveat) and mutator calls become
        MutateNodes.
        """
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            method = call_method(sub)
            if method in COLLECTIVE_OPS:
                out.append(
                    self._place(
                        OpNode(kind="collective", op=method), sub, guard
                    )
                )
            elif method in REQUEST_OPS:
                buffers = (
                    _roots(sub.args[0])
                    if method != "irecv" and sub.args
                    else ()
                )
                out.append(
                    self._place(
                        OpNode(
                            kind="start", op=method, buffers=buffers,
                            escape=escape,
                        ),
                        sub, guard,
                    )
                )
            elif method in FINISH_OPS:
                receiver = sub.func.value  # type: ignore[union-attr]
                request = None
                if method == "wait":
                    if isinstance(receiver, ast.Call):
                        continue
                    request = _dotted(receiver)
                elif sub.args and not isinstance(sub.args[0], ast.Call):
                    request = _dotted(sub.args[0])
                if request is not None:
                    out.append(
                        self._place(
                            OpNode(kind="finish", op=method, request=request),
                            sub, guard,
                        )
                    )
            elif method in MUTATOR_METHODS:
                name = base_name(sub.func.value)  # type: ignore[union-attr]
                if name:
                    out.append(
                        self._place(
                            MutateNode(
                                name=name, how=f"in-place '{method}()' on"
                            ),
                            sub, guard,
                        )
                    )
            else:
                chain = self._callee_chain(sub)
                if chain is not None:
                    argroots = tuple(_roots(a) for a in sub.args)
                    out.append(
                        self._place(
                            CallNode(
                                callee=chain, argroots=argroots,
                                escape=escape,
                            ),
                            sub, guard,
                        )
                    )


def extract_module(
    tree: ast.Module, lines: list[str], path: str
) -> ModuleIR:
    """Extract the communication IR of one parsed module."""
    return _Extractor(tree, lines, path).run()

"""Content-addressed per-file cache for the incremental lint engine.

Each analyzed file produces one cache entry keyed by the SHA-256 of its
*content* -- not its path or mtime -- so a rebuilt checkout, a renamed
file, or a ``git stash`` round trip all hit the cache as long as the
bytes match.  An entry stores everything :mod:`repro.lint.engine` needs
to skip re-analysis:

* the file-rule findings (post-suppression),
* the serialized communication IR (:class:`repro.lint.ir.ModuleIR`),
* the expanded suppression maps (per-line and file-wide), which the
  program rules apply to their own findings.

Entries live under ``<cache-dir>/<schema-tag>/<hash>.json``.  The schema
tag folds the engine schema version, the IR version, and the selected
file-rule names through :func:`repro.util.hashing.mix_tokens`, so a
schema bump or a different ``--select`` can never resurrect stale
entries -- they simply land in a different subdirectory.

Writes are atomic (temp file + rename) and reads treat any unreadable or
malformed entry as a miss: a corrupted cache costs a recompute, never a
wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.util.hashing import mix_tokens

__all__ = ["DEFAULT_CACHE_DIR", "LintCache", "content_key", "schema_tag"]

#: Default cache location, relative to the working directory (gitignored).
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def content_key(data: bytes) -> str:
    """Cache key of one file's raw bytes."""
    return hashlib.sha256(data).hexdigest()


def schema_tag(schema_version: int, ir_version: int, rule_names) -> str:
    """Digest naming the analysis configuration an entry was made under."""
    tokens = [f"schema={schema_version}", f"ir={ir_version}", *sorted(rule_names)]
    return f"{mix_tokens(tokens):016x}"


class LintCache:
    """A directory of per-file analysis results for one schema tag."""

    def __init__(self, root: str | Path, tag: str) -> None:
        self.dir = Path(root) / tag
        self.hits = 0
        self.misses = 0

    def _entry_path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Load an entry; any failure whatsoever is a miss."""
        try:
            with open(self._entry_path(key), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: dict) -> None:
        """Store an entry atomically; cache write failures are ignored
        (the analysis result is already in hand)."""
        entry = dict(entry, key=key)
        path = self._entry_path(key)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(entry, separators=(",", ":")), encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

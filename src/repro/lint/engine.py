"""Incremental analysis engine: file rules + whole-program rules + cache.

``analyze_paths`` is the full pipeline behind ``repro-kron lint``:

1. Every ``.py`` file is read and content-hashed.  On a cache hit the
   file's rule findings, communication IR, and suppression maps are
   loaded from :mod:`repro.lint.cache`; on a miss the file is parsed and
   analyzed, then stored.  Repeated runs over an unchanged tree
   therefore re-analyze nothing -- they only re-hash.
2. The per-file IRs are assembled into a
   :class:`repro.lint.callgraph.Program` and the whole-program protocol
   rules run over it.  Program analysis always runs fresh (it is cheap
   relative to parsing, and its input is exactly the cached IRs), so
   cross-file findings stay correct even when only *one* side of a
   caller/callee pair changed.
3. Program findings are filtered through each file's suppression
   pragmas, merged with the file findings, and sorted.

The cache is keyed on content, not path: findings and IR are re-anchored
to the path the file was found at on this run, which pairs with the
path-free baseline fingerprints (moved file == same findings).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.lint.cache import LintCache, content_key, schema_tag
from repro.lint.core import (
    Finding,
    LintContext,
    _collect_suppressions,
    _iter_python_files,
    _suppressed,
    resolve_selection,
)
from repro.lint.ir import IR_VERSION, ModuleIR, extract_module

__all__ = ["LINT_SCHEMA_VERSION", "analyze_paths"]

#: Bump when Finding shape, suppression expansion, or entry layout change.
LINT_SCHEMA_VERSION = 1


def _analyze_file(text: str, path: str, file_rules) -> dict:
    """Analyze one file from scratch; returns a cache-shaped entry."""
    import ast

    ctx = LintContext(path=path, source=text)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            rule="parse-error", severity="error", path=path,
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"could not parse file: {exc.msg}",
            snippet=ctx.snippet(exc.lineno or 1),
        )
        return {
            "findings": [finding.to_json()],
            "ir": None,
            "suppress_lines": {},
            "suppress_file": [],
        }
    by_line, whole_file = _collect_suppressions(ctx.lines, tree)
    findings: list[Finding] = []
    for rule in file_rules:
        if not rule.applies_to(path):
            continue
        for f in rule.check(tree, ctx):
            if not _suppressed(f, by_line, whole_file):
                findings.append(f)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    ir = extract_module(tree, ctx.lines, path)
    return {
        "findings": [f.to_json() for f in findings],
        "ir": ir.to_json(),
        "suppress_lines": {
            str(line): sorted(names) for line, names in by_line.items()
        },
        "suppress_file": sorted(whole_file),
    }


def _rel_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    cache_dir: str | Path | None = None,
) -> tuple[list[Finding], dict]:
    """Run the full (file + program) analysis over ``paths``.

    Returns ``(findings, stats)``; ``stats`` records how much work the
    cache saved (``files``, ``analyzed``, ``reused``).  Passing
    ``cache_dir=None`` disables the cache entirely.  Raises
    ``ValueError`` for unknown names in ``select``.
    """
    file_rules, program_rules = resolve_selection(select)
    cache: LintCache | None = None
    if cache_dir is not None:
        tag = schema_tag(
            LINT_SCHEMA_VERSION, IR_VERSION, [r.name for r in file_rules]
        )
        cache = LintCache(cache_dir, tag)

    findings: list[Finding] = []
    modules: list[ModuleIR] = []
    suppressions: dict[str, tuple[dict, set]] = {}
    files = 0
    reused = 0

    for file_path in _iter_python_files(Path(p) for p in paths):
        files += 1
        data = file_path.read_bytes()
        rel = _rel_path(file_path)
        entry = None
        key = ""
        if cache is not None:
            key = content_key(data)
            entry = cache.get(key)
            if entry is not None:
                reused += 1
        if entry is None:
            text = data.decode("utf-8")
            entry = _analyze_file(text, rel, file_rules)
            if cache is not None:
                cache.put(key, entry)
        for item in entry["findings"]:
            findings.append(Finding(**item).with_path(rel))
        if entry["ir"] is not None:
            mod = ModuleIR.from_json(entry["ir"])
            mod.path = rel
            modules.append(mod)
        suppressions[rel] = (
            {
                int(line): set(names)
                for line, names in entry["suppress_lines"].items()
            },
            set(entry["suppress_file"]),
        )

    if program_rules and modules:
        from repro.lint.callgraph import Program

        program = Program(modules)
        for rule in program_rules:
            for f in rule.check(program):
                by_line, whole_file = suppressions.get(f.path, ({}, set()))
                if not _suppressed(f, by_line, whole_file):
                    findings.append(f)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    stats = {
        "files": files,
        "reused": reused,
        "analyzed": files - reused,
        "cache": cache_dir is not None,
    }
    return findings, stats

"""Deterministic, vectorized edge hashing.

The probabilistic edge-rejection scheme of the paper (Def. 8) needs a fixed
hash function ``hash(p, q) -> [0, 1)`` over edges so that every processor --
and every later re-generation of the same graph -- agrees on which edges
survive a threshold ``nu``.  We use the splitmix64 finalizer, a well-studied
64-bit mixer with full avalanche, applied to a seed-dependent combination of
the two endpoint ids.

All functions operate on numpy ``uint64`` arrays without Python-level loops,
per the vectorization idioms this project follows for hot paths.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "splitmix64",
    "splitmix64_int",
    "mix_tokens",
    "hash_pair",
    "edge_uniform",
    "EdgeHasher",
]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
# 2**64 as a float, for mapping uint64 -> [0, 1).
_TWO64 = float(2**64)


def splitmix64(x: np.ndarray | int) -> np.ndarray:
    """Apply the splitmix64 finalizer to ``x`` (elementwise).

    Parameters
    ----------
    x:
        Scalar or array of non-negative integers; values are taken mod 2**64.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of mixed values with the same shape as ``x``.
    """
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


_MASK64 = (1 << 64) - 1


def splitmix64_int(x: int) -> int:
    """Scalar, pure-Python splitmix64 finalizer (no numpy round trip).

    Bit-identical to :func:`splitmix64` on the same input; used where a
    cheap deterministic 64-bit mix of small Python integers is needed
    (e.g. the lint cache's schema tags) without paying array overhead.
    """
    z = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def mix_tokens(tokens: "list[str] | tuple[str, ...]", seed: int = 0) -> int:
    """Order-sensitive 64-bit digest of a token sequence.

    Chains :func:`splitmix64_int` over the UTF-8 bytes of each token --
    a deterministic, dependency-free fingerprint for cache keys and
    schema tags.
    """
    h = splitmix64_int(seed)
    for token in tokens:
        for b in token.encode("utf-8"):
            h = splitmix64_int(h ^ b)
        h = splitmix64_int(h ^ len(token))
    return h


def hash_pair(
    u: np.ndarray | int,
    v: np.ndarray | int,
    seed: int = 0,
    *,
    directed: bool = False,
) -> np.ndarray:
    """Hash endpoint pairs to ``uint64``.

    For undirected use (the default) the pair is canonicalized so that
    ``hash_pair(u, v) == hash_pair(v, u)``: an undirected edge must receive a
    single hash value regardless of the direction in which it is generated.

    Parameters
    ----------
    u, v:
        Endpoint id arrays (broadcastable to a common shape).
    seed:
        Stream seed; different seeds give independent hash families.
    directed:
        If ``True``, ``(u, v)`` and ``(v, u)`` hash independently.
    """
    uu = np.asarray(u, dtype=np.uint64)
    vv = np.asarray(v, dtype=np.uint64)
    if not directed:
        lo = np.minimum(uu, vv)
        hi = np.maximum(uu, vv)
        uu, vv = lo, hi
    with np.errstate(over="ignore"):
        h = splitmix64(uu ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
        h = splitmix64(h + vv * _GOLDEN)
    return h


def edge_uniform(
    u: np.ndarray | int,
    v: np.ndarray | int,
    seed: int = 0,
    *,
    directed: bool = False,
) -> np.ndarray:
    """Map endpoint pairs to deterministic uniforms in ``[0, 1)``.

    This is the ``hash(p, q)`` of Def. 8 in the paper: the value is a pure
    function of the edge (and ``seed``), so jointly generating the subgraph
    family ``G_{C,nu}`` for several thresholds requires hashing each edge
    once.
    """
    h = hash_pair(u, v, seed, directed=directed)
    return h.astype(np.float64) / _TWO64


class EdgeHasher:
    """A reusable, seeded edge-hash stream.

    Thin convenience wrapper binding ``seed`` and ``directed`` so callers in
    the rejection-family and shuffle code paths do not thread them through
    every call.

    Parameters
    ----------
    seed:
        Hash stream seed.
    directed:
        Whether ``(u, v)`` and ``(v, u)`` are distinct edges.
    """

    __slots__ = ("seed", "directed")

    def __init__(self, seed: int = 0, *, directed: bool = False) -> None:
        self.seed = int(seed)
        self.directed = bool(directed)

    def uniform(self, u: np.ndarray | int, v: np.ndarray | int) -> np.ndarray:
        """Deterministic uniforms in ``[0, 1)`` for the edges ``(u, v)``."""
        return edge_uniform(u, v, self.seed, directed=self.directed)

    def owner(self, u: np.ndarray | int, v: np.ndarray | int, nparts: int) -> np.ndarray:
        """Map edges to one of ``nparts`` owners (for distributed storage)."""
        h = hash_pair(u, v, self.seed, directed=self.directed)
        return (h % np.uint64(nparts)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeHasher(seed={self.seed}, directed={self.directed})"

"""Lightweight wall-clock timing used by experiments and the cost model."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating over repeated ``with`` blocks.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("elapsed", "laps", "_start")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time and lap history."""
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

"""Argument-validation helpers.

Ground-truth formulas are only correct under explicit hypotheses, and the
distributed code paths fail in confusing ways when fed malformed edge lists,
so public entry points validate eagerly and raise typed errors from
:mod:`repro.errors`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

__all__ = [
    "check_square_ids",
    "check_edge_array",
    "check_probability",
    "check_positive_int",
]


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` as ``int`` after checking it is a positive integer."""
    iv = int(value)
    if iv != value or iv <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return iv


def check_probability(value: float, name: str) -> float:
    """Return ``value`` as ``float`` after checking it lies in ``[0, 1]``."""
    fv = float(value)
    if not (0.0 <= fv <= 1.0) or np.isnan(fv):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return fv


def check_edge_array(edges: np.ndarray, name: str = "edges") -> np.ndarray:
    """Validate and canonicalize an ``(m, 2)`` int64 edge array.

    Accepts anything convertible to an integer array of shape ``(m, 2)``;
    rejects negative ids.  Returns a C-contiguous ``int64`` view/copy.
    """
    arr = np.asarray(edges)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError(
            f"{name} must have shape (m, 2), got {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and not np.all(arr == np.floor(arr)):
            raise GraphFormatError(f"{name} contains non-integer endpoints")
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    if arr.min(initial=0) < 0:
        raise GraphFormatError(f"{name} contains negative vertex ids")
    return arr


def check_square_ids(edges: np.ndarray, n: int, name: str = "edges") -> None:
    """Check every endpoint in ``edges`` is a valid id for an ``n``-vertex graph."""
    if edges.size and int(edges.max()) >= n:
        raise GraphFormatError(
            f"{name} references vertex {int(edges.max())} but graph has n={n}"
        )

"""Chunked iteration helpers.

The Kronecker product of two edge lists has ``|E_A| * |E_B|`` edges; the
generator never materializes that product in one allocation.  These helpers
centralize the chunk arithmetic so the product code, the distributed
generator, and the shuffle all slice identically.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["chunk_bounds", "iter_chunks"]


def chunk_bounds(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Return ``(start, stop)`` half-open bounds covering ``range(total)``.

    The final chunk may be short.  ``total == 0`` yields no chunks.
    """
    total = int(total)
    chunk_size = int(chunk_size)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
    starts = range(0, total, chunk_size)
    return [(s, min(s + chunk_size, total)) for s in starts]


def iter_chunks(arr: Sequence | np.ndarray, chunk_size: int) -> Iterator:
    """Yield contiguous slices of ``arr`` of at most ``chunk_size`` rows.

    Slices of numpy arrays are views (no copy), matching the
    "be easy on the memory" guidance for numeric hot paths.
    """
    for start, stop in chunk_bounds(len(arr), chunk_size):
        yield arr[start:stop]

"""Shared low-level utilities: hashing, validation, chunking, timing."""

from repro.util.hashing import (
    splitmix64,
    hash_pair,
    edge_uniform,
    EdgeHasher,
)
from repro.util.validation import (
    check_square_ids,
    check_edge_array,
    check_probability,
    check_positive_int,
)
from repro.util.chunking import iter_chunks, chunk_bounds
from repro.util.timer import Timer

__all__ = [
    "splitmix64",
    "hash_pair",
    "edge_uniform",
    "EdgeHasher",
    "check_square_ids",
    "check_edge_array",
    "check_probability",
    "check_positive_int",
    "iter_chunks",
    "chunk_bounds",
    "Timer",
]
